//! The simulation engine: drives a protocol under a scheduler.
//!
//! # Incremental enabled-set maintenance
//!
//! The paper's communication measures are all about *not* looking at every
//! neighbor at every step, and the executor practices what the paper
//! preaches. Instead of recomputing the communication configuration and
//! re-evaluating every guard on every step (`O(n·Δ)` work per step, the
//! dominating cost for central daemons that activate one process at a
//! time), [`Simulation`] maintains two caches across steps:
//!
//! * the **communication configuration** — `comm(p, state_p)` for every
//!   `p` — updated only for processes whose activation changed their
//!   communication state, and
//! * the **enabled set** ([`EnabledSet`]) — re-evaluating `is_enabled` only
//!   for *dirty* processes: a process is dirty iff its own state changed
//!   since its guard was last evaluated, or a neighbor changed its
//!   communication state (guards read exactly the own state plus neighbor
//!   communication states, so nothing else can flip them).
//!
//! Fault injection ([`Simulation::set_state`]) refreshes the caches the
//! same way, marking the victim and its whole neighborhood dirty. The
//! invariant — the maintained set equals a from-scratch recomputation — is
//! checked by sampled `debug_assert`s, and
//! [`SimOptions::with_full_recompute`] forces the executor to dirty every
//! process on every step, which restores the historical full-recompute
//! behavior bit for bit (used by the equivalence property tests and as the
//! benchmark baseline).
//!
//! # Zero-allocation steady state
//!
//! [`Simulation::step`] performs **no heap allocation** once its scratch
//! buffers have grown to the execution's working size (checked by the
//! `zero_alloc` integration test with a counting allocator). Every
//! per-step collection is a persistent buffer owned by the simulation:
//!
//! * the scheduler writes its selection into a reused `Vec<NodeId>`
//!   (sorted and duplicate-free by the [`Scheduler`] contract — the
//!   executor `debug_assert`s instead of re-sorting),
//! * staged updates, the executed list, the neighbor-view read log and the
//!   distinct-read set are all reused buffers drained in place,
//! * round detection decrements an `unselected_remaining` counter instead
//!   of scanning an `O(n)` flag vector every step,
//! * [`Simulation::comm_config`] returns the maintained cache by reference.
//!
//! The two deliberate exceptions, both off by default: recording a
//! [`Trace`] allocates one `ActivationRecord` (plus its read list) per
//! activation because the trace retains them forever, and a
//! [`SimOptions::with_read_restriction`] view allocates its restriction
//! mask (cold impossibility-experiment path).
//!
//! # Intra-step parallelism
//!
//! With [`SimOptions::with_step_workers`]` > 1` the node range is split
//! into contiguous, degree-balanced shards ([`NodePartition`]) and the two
//! data-parallel phases of a step — guard re-evaluation over the dirty
//! queues and activation staging over the scheduler's selection — run on
//! scoped worker threads. Every per-node array (dirty flags, enabled
//! flags, round flags, statistics) is handed out as disjoint `&mut`
//! slices, each worker owns a private `ShardScratch` (the per-worker
//! extension of the zero-allocation discipline above), and a sequential
//! merge phase applies staged updates and dirty propagation in shard
//! order. Selection itself and all cross-shard mutation stay on the
//! coordinating thread, and every activation draws from a private RNG
//! derived from `(seed, step, process)`, so the observable execution —
//! selected/executed lists, configuration, [`RunStats`], trace, enabled
//! sets — is **byte-identical at every worker count** (locked down by the
//! `parallel_step_equivalence` differential test).

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_graph::{Graph, NodeId, NodePartition, Port};
use serde::{Deserialize, Serialize};

use crate::enabled::EnabledSet;
use crate::kernel::EnabledWriter;
use crate::protocol::Protocol;
use crate::scheduler::{Scheduler, SchedulerContext};
use crate::soa::StateStore;
use crate::stats::{RunStats, StatsShard};
use crate::telemetry::metrics::{self, StepPhase};
use crate::telemetry::sink::TraceSink;
use crate::trace::{ActivationRecord, StepRecord, Trace};
use crate::view::{GatherBuffer, NeighborView};

/// Options controlling a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Record a full [`Trace`] (per-step records). Costs memory linear in
    /// the number of steps; the aggregated [`RunStats`] are always kept.
    pub record_trace: bool,
    /// How many steps apart the silence/legitimacy predicates are evaluated
    /// while running to completion (1 = every step).
    pub check_interval: u64,
    /// Optional per-process read restriction: process `p` may only read the
    /// listed ports. Used by the impossibility experiments to model
    /// protocols that have committed to never read some neighbors again.
    pub read_restriction: Option<Vec<Vec<Port>>>,
    /// Disable the incremental enabled-set cache: re-evaluate every guard
    /// on every step. The observable execution (selections, activations,
    /// stats, trace, RNG stream) is identical either way; this exists as
    /// the reference behavior for equivalence tests and benchmarks.
    pub full_recompute: bool,
    /// Number of worker threads for the intra-step parallel phases (guard
    /// refresh and activation staging). `1` (the default) keeps every
    /// phase on the calling thread; any value is clamped to at least 1 and
    /// to the process count. The observable execution is byte-identical at
    /// every worker count (see the [module documentation](self)).
    pub step_workers: usize,
    /// Minimum number of work items (dirty processes for the guard phase,
    /// selected processes for the activation phase) before a phase is
    /// dispatched to worker threads instead of running inline — spawning
    /// across shards is not worth it for a handful of activations. Set to
    /// `0` to force threaded dispatch whenever `step_workers > 1` (the
    /// equivalence and allocation tests do, so that small graphs still
    /// exercise the parallel path). Outcomes are identical either way; the
    /// threshold only moves work between threads.
    pub parallel_work_threshold: usize,
    /// Store per-node state and communication state in the struct-of-arrays
    /// layout ([`StateStore::Soa`]): one dense typed column per field
    /// instead of a `Vec` of heterogeneous structs. Shrinks the footprint
    /// and improves locality at n = 10⁶–10⁷; honored only for types with a
    /// columnar [`SoaState`](crate::SoaState) decomposition. The observable
    /// execution is byte-identical in either layout (pinned by the
    /// `soa_step_equivalence` differential test), but the borrowed
    /// slice accessors [`Simulation::config`] / [`Simulation::comm_config`]
    /// are unavailable — use the by-value and store accessors instead.
    pub soa_layout: bool,
    /// Route the guard-refresh phase through the protocol's bulk guard
    /// kernel ([`Protocol::refresh_guards_bulk`]) when one exists: instead
    /// of decoding one row per dirty node and calling the scalar guard,
    /// the whole dirty batch is evaluated with word-parallel bit
    /// operations over the raw state columns. Only engages when the
    /// protocol reports a kernel, no read restriction is installed, and a
    /// shard's batch reaches [`guard_kernel_threshold`](Self::guard_kernel_threshold);
    /// the scalar path remains the fallback in every other case. The
    /// observable execution — enabled sets, [`RunStats`], traces, replay —
    /// is byte-identical either way, at every worker count (pinned by the
    /// `kernel_step_equivalence` differential tests).
    pub guard_kernels: bool,
    /// Minimum per-shard dirty-batch size before the bulk kernel path is
    /// taken; smaller batches keep the scalar path, whose per-node cost
    /// wins in sparse single-activation regimes where a 64-lane gather
    /// would run mostly empty. Set to `0` to force the kernel on every
    /// non-empty batch (the equivalence tests do). Ignored unless
    /// [`guard_kernels`](Self::guard_kernels) is set.
    pub guard_kernel_threshold: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            record_trace: false,
            check_interval: 1,
            read_restriction: None,
            full_recompute: false,
            step_workers: 1,
            parallel_work_threshold: 256,
            soa_layout: false,
            guard_kernels: false,
            guard_kernel_threshold: 64,
        }
    }
}

impl SimOptions {
    /// Enables full trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the silence-check interval (clamped to at least 1).
    #[must_use]
    pub fn with_check_interval(mut self, interval: u64) -> Self {
        self.check_interval = interval.max(1);
        self
    }

    /// Restricts the ports each process may read (indexed by process).
    #[must_use]
    pub fn with_read_restriction(mut self, restriction: Vec<Vec<Port>>) -> Self {
        self.read_restriction = Some(restriction);
        self
    }

    /// Forces a full guard recomputation on every step (the reference
    /// executor used by equivalence tests and benchmark baselines).
    #[must_use]
    pub fn with_full_recompute(mut self) -> Self {
        self.full_recompute = true;
        self
    }

    /// Sets the number of intra-step worker threads (clamped to at least 1).
    #[must_use]
    pub fn with_step_workers(mut self, workers: usize) -> Self {
        self.step_workers = workers.max(1);
        self
    }

    /// Sets the minimum per-phase work-item count for threaded dispatch
    /// (`0` forces the parallel path whenever `step_workers > 1`).
    #[must_use]
    pub fn with_parallel_work_threshold(mut self, threshold: usize) -> Self {
        self.parallel_work_threshold = threshold;
        self
    }

    /// Selects the struct-of-arrays state layout (see
    /// [`SimOptions::soa_layout`]).
    #[must_use]
    pub fn with_soa_layout(mut self) -> Self {
        self.soa_layout = true;
        self
    }

    /// Enables the bulk guard-kernel path for the guard-refresh phase (see
    /// [`SimOptions::guard_kernels`]). Typically combined with
    /// [`SimOptions::with_soa_layout`]: kernels evaluate over raw columns
    /// and decline row stores, so without SoA this is a no-op.
    #[must_use]
    pub fn with_guard_kernels(mut self) -> Self {
        self.guard_kernels = true;
        self
    }

    /// Sets the minimum per-shard dirty-batch size for the kernel path
    /// (see [`SimOptions::guard_kernel_threshold`]; `0` forces the kernel
    /// on every non-empty batch).
    #[must_use]
    pub fn with_guard_kernel_threshold(mut self, threshold: usize) -> Self {
        self.guard_kernel_threshold = threshold;
        self
    }
}

/// Summary of a [`Simulation::run_until_silent`] call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Whether the run reached a silent configuration before the step limit.
    pub silent: bool,
    /// Whether the final configuration satisfies the legitimacy predicate.
    pub legitimate: bool,
    /// Steps executed by this call.
    pub steps: u64,
    /// Rounds completed by this call (paper definition: every process
    /// selected at least once per round).
    pub rounds: u64,
    /// Total steps executed by the simulation since construction.
    pub total_steps: u64,
    /// Total rounds completed by the simulation since construction.
    pub total_rounds: u64,
}

/// What happened during a single step.
///
/// Kept `Copy`-small so [`Simulation::step`] stays allocation-free; the
/// process lists live in the simulation's reused scratch buffers and are
/// readable until the next step through [`Simulation::last_selected`] and
/// [`Simulation::last_executed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Number of processes selected by the scheduler.
    pub selected: usize,
    /// Number of processes that executed an enabled action.
    pub executed: usize,
    /// Whether any communication variable changed.
    pub comm_changed: bool,
}

/// A running execution of `protocol` on `graph` under `scheduler`.
///
/// The simulation owns the configuration (one [`Protocol::State`] per
/// process) and advances it step by step following the paper's semantics:
/// all processes selected in a step evaluate their guards against the same
/// pre-step configuration, then all resulting state updates are applied
/// simultaneously (composite atomicity under a distributed daemon).
///
/// Internally the executor is *incremental*: it caches the communication
/// configuration and the enabled set across steps and re-evaluates a
/// process's guard only when the process or one of its neighbors changed
/// (see the [module documentation](self)), and its steady-state step loop
/// is allocation-free (every per-step collection is a persistent scratch
/// buffer).
pub struct Simulation<'g, P: Protocol, S: Scheduler> {
    graph: &'g Graph,
    protocol: P,
    scheduler: S,
    rng: StdRng,
    /// Per-process full states, in the layout selected by
    /// [`SimOptions::soa_layout`] (array-of-structs rows by default).
    config: StateStore<P::State>,
    stats: RunStats,
    trace: Option<Trace>,
    /// Attached telemetry sink, if any: the executor hands it every
    /// step's record unless it reports
    /// [`is_recording`](TraceSink::is_recording)` == false` (the
    /// [`NullSink`](crate::telemetry::NullSink)), in which case the hot
    /// path is byte-identical to running with no sink at all.
    sink: Option<Box<dyn TraceSink>>,
    options: SimOptions,
    step: u64,
    rounds: u64,
    selected_this_round: Vec<bool>,
    /// Number of `false` entries in `selected_this_round`: the round is
    /// complete exactly when this reaches 0 (replaces the historical `O(n)`
    /// per-step scan; the equivalence is `debug_assert`ed).
    unselected_remaining: usize,
    /// Cached `comm(p, config[p])` for every process, kept current across
    /// steps (the seed executor recomputed this clone every step), stored
    /// in the same layout as `config`.
    comm_cache: StateStore<P::Comm>,
    /// Maintained enabled set; valid for the current configuration once
    /// `refresh_enabled` has drained `dirty`.
    enabled: EnabledSet,
    /// `dirty[p]`: `p`'s guard must be re-evaluated before the next
    /// selection (its state changed, or a neighbor's comm state changed).
    dirty: Vec<bool>,
    /// Contiguous degree-balanced shard layout; one shard per step worker
    /// (clamped to the process count), a single shard when sequential.
    partition: NodePartition,
    /// Per-shard scratch: dirty queue, staged updates, executed list, read
    /// buffers, trace records. Each worker thread owns exactly one during
    /// the parallel phases.
    shards: Vec<ShardScratch<P>>,
    /// Effective intra-step worker count (`options.step_workers`, ≥ 1).
    step_workers: usize,
    /// Salt for the per-activation RNG streams, derived from the
    /// construction seed: each activation of process `p` at step `t` draws
    /// from `StdRng::seed_from_u64(mix(salt, t, p))`, which makes protocol
    /// randomness independent of both the activation order within a step
    /// and the worker count.
    activation_salt: u64,
    /// Total number of `is_enabled` evaluations performed — the cost the
    /// incremental maintenance is designed to shrink.
    guard_evaluations: u64,
    /// Scratch: the scheduler's selection for the current step.
    selected_scratch: Vec<NodeId>,
    /// Scratch: the processes that executed in the current step, merged
    /// from the per-shard lists in shard order (which is increasing id
    /// order, since shards tile the id space contiguously).
    executed_scratch: Vec<NodeId>,
    /// Scratch for the sampled debug invariant check, so even debug builds
    /// keep the steady-state step allocation-free (the `zero_alloc`
    /// integration test runs in debug mode).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    debug_enabled_scratch: Vec<bool>,
    /// Scratch for the debug invariant check under the SoA layout: the
    /// reference recomputation needs a contiguous communication snapshot,
    /// materialized into this persistent buffer (capacity survives, so the
    /// sampled check stays allocation-free in steady state).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    debug_comm_scratch: Vec<P::Comm>,
}

impl<'g, P: Protocol, S: Scheduler> Simulation<'g, P, S> {
    /// Creates a simulation from an **arbitrary random** initial
    /// configuration (the self-stabilization setting: transient faults may
    /// have left anything in the variables).
    ///
    /// # Example
    ///
    /// ```
    /// use selfstab_graph::generators;
    /// use selfstab_runtime::guarded::{ActionContext, GuardedAction, GuardedProtocol};
    /// use selfstab_runtime::scheduler::Synchronous;
    /// use selfstab_runtime::{SimOptions, Simulation};
    ///
    /// // "Adopt the largest value in my neighborhood" as a guarded action.
    /// let adopt = GuardedAction::new(
    ///     "adopt-max",
    ///     |ctx: &ActionContext<'_, '_, u32, u32>| ctx.neighbor_comms().any(|v| v > ctx.state),
    ///     |ctx, _rng| ctx.neighbor_comms().copied().max().unwrap_or(*ctx.state),
    /// );
    /// let protocol = GuardedProtocol::new(
    ///     "max-propagation",
    ///     vec![adopt],
    ///     |_, p, _| p.index() as u32,
    ///     |_, state| *state,
    ///     |_, _| 32,
    ///     |_, _| 32,
    ///     |_, config| config.iter().all(|&v| v == config.iter().copied().max().unwrap_or(0)),
    /// );
    ///
    /// let graph = generators::ring(5);
    /// let mut sim = Simulation::new(&graph, protocol, Synchronous, 7, SimOptions::default());
    /// assert_eq!(sim.steps(), 0);
    /// sim.run_steps(3);
    /// assert!(sim.config().iter().all(|&v| v == 4), "the maximum spread everywhere");
    /// ```
    pub fn new(
        graph: &'g Graph,
        protocol: P,
        scheduler: S,
        seed: u64,
        options: SimOptions,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let config: Vec<P::State> = graph
            .nodes()
            .map(|p| protocol.arbitrary_state(graph, p, &mut rng))
            .collect(); // lint: allow(hot-alloc) — construction of the initial configuration
        Self::with_config(
            graph,
            protocol,
            scheduler,
            config,
            seed.wrapping_add(1),
            options,
        )
    }

    /// Creates a simulation from an explicit initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.len()` does not match the process count.
    pub fn with_config(
        graph: &'g Graph,
        protocol: P,
        scheduler: S,
        config: Vec<P::State>,
        seed: u64,
        options: SimOptions,
    ) -> Self {
        assert_eq!(
            config.len(),
            graph.node_count(),
            "configuration must contain one state per process"
        );
        // lint: allow(hot-alloc) — constructor-only degree table
        let degrees: Vec<usize> = graph.nodes().map(|p| graph.degree(p)).collect();
        let trace = options.record_trace.then(Trace::new);
        let n = graph.node_count();
        let comm_rows: Vec<P::Comm> = graph
            .nodes()
            .map(|p| protocol.comm(p, &config[p.index()]))
            .collect(); // lint: allow(hot-alloc) — constructor-only comm-cache build
        let comm_cache = StateStore::from_vec(comm_rows, options.soa_layout);
        let config = StateStore::from_vec(config, options.soa_layout);
        let step_workers = options.step_workers.max(1);
        let partition = NodePartition::new(graph, step_workers);
        let max_degree = graph.max_degree();
        // Per-shard scratch is sized for the worst case up front (a shard
        // never stages or executes more than its own nodes, and a read set
        // never exceeds the maximum degree), so the per-step loop is
        // allocation-free from the very first step, not just after warm-up.
        // Nothing has been evaluated yet: every guard starts dirty.
        let shards: Vec<ShardScratch<P>> = partition
            .ranges()
            .map(|range| ShardScratch {
                dirty_queue: {
                    let mut queue = Vec::with_capacity(range.len());
                    queue.extend(range.clone().map(NodeId::new)); // lint: allow(hot-alloc) — Range<usize> clone is a stack copy
                    queue
                },
                staged: Vec::with_capacity(range.len()),
                executed: Vec::with_capacity(range.len()),
                read_log: Vec::new(), // lint: allow(hot-alloc) — constructor scratch; reused every step
                distinct_reads: Vec::with_capacity(max_degree),
                records: Vec::new(), // lint: allow(hot-alloc) — constructor scratch; reused every step
                gather: GatherBuffer::new(max_degree),
            })
            .collect(); // lint: allow(hot-alloc) — per-shard scratch built once
        Simulation {
            graph,
            protocol,
            scheduler,
            rng: StdRng::seed_from_u64(seed),
            config,
            stats: RunStats::new(&degrees),
            trace,
            sink: None,
            options,
            step: 0,
            rounds: 0,
            selected_this_round: vec![false; n], // lint: allow(hot-alloc) — constructor-sized flag array
            unselected_remaining: n,
            comm_cache,
            enabled: EnabledSet::new(n),
            dirty: vec![true; n], // lint: allow(hot-alloc) — constructor-sized dirty flags
            partition,
            shards,
            step_workers,
            // Any injective-ish mixing of the seed works here; the constant
            // only separates the salt from the main RNG stream's seed.
            activation_salt: seed ^ 0xA076_1D64_78BD_642F,
            guard_evaluations: 0,
            // Selections and executions are bounded by n (selections are
            // duplicate-free by the scheduler contract).
            selected_scratch: Vec::with_capacity(n),
            executed_scratch: Vec::with_capacity(n),
            debug_enabled_scratch: Vec::new(), // lint: allow(hot-alloc) — debug-assert scratch, grown once
            debug_comm_scratch: Vec::new(), // lint: allow(hot-alloc) — debug-assert scratch, grown once
        }
    }

    /// The simulated topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The simulated topology with the graph's own lifetime.
    ///
    /// Unlike [`Simulation::graph`] (whose borrow is tied to `&self`), the
    /// returned reference lives as long as the graph itself, so callers —
    /// fault injectors in particular — can keep reading the topology while
    /// mutating the simulation in the same scope.
    pub fn topology(&self) -> &'g Graph {
        self.graph
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration (one state per process).
    ///
    /// # Panics
    ///
    /// Panics under [`SimOptions::with_soa_layout`]: a columnar store has no
    /// contiguous row slice to borrow. Use [`Simulation::state_of`],
    /// [`Simulation::config_vec`] or [`Simulation::state_store`] there.
    pub fn config(&self) -> &[P::State] {
        self.config.as_slice().expect(
            "Simulation::config() needs the array-of-structs layout: a columnar store has no \
             contiguous row slice to borrow. Under SimOptions::with_soa_layout read single \
             states with state_of(p), visit a row in place with state_store().with_row(i, f), \
             or materialize everything with config_vec(). See docs/ARCHITECTURE.md, \
             \"Memory layout & hot path\".",
        )
    }

    /// The current communication configuration (one communication state per
    /// process), served **by reference** from the maintained cache (the
    /// seed executor cloned the whole cache on every call).
    ///
    /// # Panics
    ///
    /// Panics under [`SimOptions::with_soa_layout`] (see
    /// [`Simulation::config`]); use [`Simulation::comm_of`] or
    /// [`Simulation::comm_store`] there.
    pub fn comm_config(&self) -> &[P::Comm] {
        self.comm_cache.as_slice().expect(
            "Simulation::comm_config() needs the array-of-structs layout: a columnar store has \
             no contiguous row slice to borrow. Under SimOptions::with_soa_layout read single \
             communication states with comm_of(p) or visit rows in place with \
             comm_store().with_row(i, f). See docs/ARCHITECTURE.md, \
             \"Memory layout & hot path\".",
        )
    }

    /// The state of process `p`, by value — works in either layout.
    pub fn state_of(&self, p: NodeId) -> P::State {
        self.config.get(p.index())
    }

    /// The cached communication state of process `p`, by value — works in
    /// either layout.
    pub fn comm_of(&self, p: NodeId) -> P::Comm {
        self.comm_cache.get(p.index())
    }

    /// The full configuration materialized into a fresh `Vec` (decodes the
    /// columns under the SoA layout; use [`Simulation::config`] when rows
    /// are known to exist).
    pub fn config_vec(&self) -> Vec<P::State> {
        self.config.to_vec() // lint: allow(hot-alloc) — documented materializing accessor
    }

    /// The layout-aware state store.
    pub fn state_store(&self) -> &StateStore<P::State> {
        &self.config
    }

    /// The layout-aware communication store.
    pub fn comm_store(&self) -> &StateStore<P::Comm> {
        &self.comm_cache
    }

    /// Heap bytes owned by the (state, communication) stores — the
    /// bytes-per-node accounting the SoA benchmarks report.
    pub fn store_heap_bytes(&self) -> (usize, usize) {
        (self.config.heap_bytes(), self.comm_cache.heap_bytes())
    }

    /// The processes selected in the most recent step, in increasing id
    /// order (empty before the first step).
    pub fn last_selected(&self) -> &[NodeId] {
        &self.selected_scratch
    }

    /// The processes that executed an enabled action in the most recent
    /// step, in increasing id order (empty before the first step).
    pub fn last_executed(&self) -> &[NodeId] {
        &self.executed_scratch
    }

    /// The enabled set for the current configuration.
    ///
    /// Takes `&mut self` because pending guard re-evaluations (from the
    /// last step or the last fault injection) are flushed first.
    pub fn enabled_set(&mut self) -> &EnabledSet {
        self.refresh_enabled();
        &self.enabled
    }

    /// Total number of `is_enabled` evaluations performed so far.
    ///
    /// With the incremental executor this grows with the amount of actual
    /// change per step (`O(Δ)` per activation) rather than with `n` per
    /// step; under [`SimOptions::with_full_recompute`] it grows by `n`
    /// every step. Deliberately kept out of [`RunStats`] so that the two
    /// modes produce identical stats.
    pub fn guard_evaluations(&self) -> u64 {
        self.guard_evaluations
    }

    /// Aggregated execution statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The recorded trace, if trace recording was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attaches a telemetry sink; every subsequent step's record is
    /// streamed into it (replacing any previously attached sink).
    ///
    /// Attaching a [`NullSink`](crate::telemetry::NullSink) — or any
    /// sink whose [`TraceSink::is_recording`] returns `false` — leaves
    /// the hot path byte-identical to running with no sink: the executor
    /// checks once per step and skips record construction entirely.
    pub fn attach_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the telemetry sink, returning it so the owner can seal
    /// the stream ([`TraceSink::finish`]) with the run's digests.
    pub fn detach_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Mutable access to the scheduler.
    ///
    /// Exists for drivers that feed the scheduler between steps — the
    /// trace replay driver stages each recorded selection through this
    /// before stepping ([`crate::telemetry::replay()`]).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// Total steps executed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Total rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Evaluates the protocol's legitimacy predicate on the current
    /// configuration.
    pub fn is_legitimate(&self) -> bool {
        self.protocol.is_legitimate_store(self.graph, &self.config)
    }

    /// Evaluates the protocol's silence predicate on the current
    /// configuration.
    pub fn is_silent(&self) -> bool {
        self.protocol.is_silent_store(self.graph, &self.config)
    }

    /// Places the suffix marker for ♦-stability measurements at the current
    /// step (see [`RunStats::mark_suffix`]).
    pub fn mark_suffix(&mut self) {
        self.stats.mark_suffix(self.step);
    }

    /// Replaces the state of process `p` (used by fault injection).
    ///
    /// The communication cache is refreshed and `p` **and its whole
    /// neighborhood** are marked dirty, so the next step re-evaluates every
    /// guard the fault may have flipped.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set_state(&mut self, p: NodeId, state: P::State) {
        let comm = self.protocol.comm(p, &state);
        self.config.set(p.index(), &state);
        self.comm_cache.set(p.index(), &comm);
        // Conservatively dirty the neighborhood even when the communication
        // state happens to be unchanged: fault injection is rare and cold,
        // and the unconditional form keeps the invariant obviously safe.
        self.mark_dirty(p);
        let graph = self.graph;
        for q in graph.neighbors(p) {
            self.mark_dirty(q);
        }
    }

    fn mark_dirty(&mut self, p: NodeId) {
        if !self.dirty[p.index()] {
            self.dirty[p.index()] = true;
            let s = self.partition.shard_of(p);
            self.shards[s].dirty_queue.push(p);
        }
    }

    /// Re-evaluates the guards of every dirty process, bringing the
    /// maintained enabled set in sync with the current configuration.
    ///
    /// This is the first data-parallel phase: each shard drains its own
    /// dirty queue against disjoint windows of the dirty and enabled-flag
    /// arrays. Guard evaluation is pure (it reads the shared pre-step
    /// snapshot and writes only shard-local flags), so the drain order
    /// across shards is unobservable — the resulting enabled *set* and the
    /// evaluation *count* are identical at every worker count.
    fn refresh_enabled(&mut self) {
        if self.options.full_recompute {
            for (s, scratch) in self.shards.iter_mut().enumerate() {
                for i in self.partition.range(s) {
                    if !self.dirty[i] {
                        self.dirty[i] = true;
                        scratch.dirty_queue.push(NodeId::new(i));
                    }
                }
            }
        }
        let total_dirty: usize = self.shards.iter().map(|s| s.dirty_queue.len()).sum();
        if total_dirty == 0 {
            return;
        }
        // Phase-A metrics: recorded only when the refresh drained work,
        // so the silent steady state pays one relaxed load and nothing
        // else.
        let metrics = metrics::active();
        // lint: allow(determinism) — phase timing feeds the metrics histograms only
        let phase_started = metrics.map(|_| std::time::Instant::now());
        let ctx = StepContext {
            graph: self.graph,
            protocol: &self.protocol,
            config: &self.config,
            comm_cache: &self.comm_cache,
            comm_slice: self.comm_cache.as_slice(),
            read_restriction: self.options.read_restriction.as_deref(),
            step: self.step,
            salt: self.activation_salt,
            tracing: false,
            use_kernel: self.options.guard_kernels
                && self.options.read_restriction.is_none()
                && self.protocol.has_bulk_guard_kernel(),
            kernel_threshold: self.options.guard_kernel_threshold,
        };
        let mut evaluations = 0u64;
        let mut delta = 0isize;
        if self.shards.len() == 1 {
            // Sequential fast path: one stack-allocated task over the full
            // arrays, no task list to build.
            let shard = &mut self.shards[0];
            let mut task = GuardTask {
                node_base: 0,
                queue: &mut shard.dirty_queue,
                dirty: &mut self.dirty,
                enabled: self.enabled.flags_mut(),
                gather: &mut shard.gather,
                guard_evaluations: 0,
                enabled_delta: 0,
            };
            run_guard_task(&mut task, &ctx);
            evaluations = task.guard_evaluations;
            delta = task.enabled_delta;
        } else {
            let mut tasks = Vec::with_capacity(self.shards.len());
            let mut dirty_rest: &mut [bool] = &mut self.dirty;
            let mut enabled_rest: &mut [bool] = self.enabled.flags_mut();
            for (s, scratch) in self.shards.iter_mut().enumerate() {
                let range = self.partition.range(s);
                let (dirty, rest) = dirty_rest.split_at_mut(range.len());
                dirty_rest = rest;
                let (enabled, rest) = enabled_rest.split_at_mut(range.len());
                enabled_rest = rest;
                tasks.push(GuardTask {
                    node_base: range.start,
                    queue: &mut scratch.dirty_queue,
                    dirty,
                    enabled,
                    gather: &mut scratch.gather,
                    guard_evaluations: 0,
                    enabled_delta: 0,
                });
            }
            if self.step_workers > 1 && total_dirty >= self.options.parallel_work_threshold {
                run_shard_tasks(self.step_workers, &mut tasks, |task| {
                    run_guard_task(task, &ctx);
                });
            } else {
                for task in &mut tasks {
                    run_guard_task(task, &ctx);
                }
            }
            for task in &tasks {
                evaluations += task.guard_evaluations;
                delta += task.enabled_delta;
            }
        }
        self.guard_evaluations += evaluations;
        self.enabled.apply_count_delta(delta);
        if let (Some(m), Some(started)) = (metrics, phase_started) {
            m.phase(StepPhase::GuardRefresh)
                .record(total_dirty as u64, started.elapsed());
        }
    }

    /// Recomputes the enabled flags of every process from scratch
    /// (the reference the incremental maintenance must agree with). The
    /// sampled debug-assert recomputes into its own scratch buffer; this
    /// allocating form is kept for tests.
    #[cfg_attr(not(test), allow(dead_code))]
    fn recompute_enabled_reference(&self) -> Vec<bool> {
        let materialized;
        let comm_slice: &[P::Comm] = match self.comm_cache.as_slice() {
            Some(rows) => rows,
            None => {
                materialized = self.comm_cache.to_vec(); // lint: allow(hot-alloc) — reference/debug path, not the incremental loop
                &materialized
            }
        };
        self.graph
            .nodes()
            .map(|p| {
                let view = self.untracked_view(p, comm_slice);
                self.config.with_row(p.index(), |state| {
                    self.protocol.is_enabled(self.graph, p, state, &view)
                })
            })
            .collect() // lint: allow(hot-alloc) — reference/debug path, not the incremental loop
    }

    #[cfg(debug_assertions)]
    fn debug_check_enabled_invariant(&mut self) {
        // Sampled: every step on small systems, periodically on large ones,
        // so debug test runs stay fast while still covering long executions.
        let sampled = self.graph.node_count() <= 64 || self.step.is_multiple_of(101);
        if sampled {
            // Recompute into persistent scratch buffers: even the debug
            // invariant machinery must not allocate in steady state. Under
            // the SoA layout the reference views need a contiguous
            // communication snapshot, decoded into `debug_comm_scratch`
            // (whose capacity also survives across checks).
            let mut reference = std::mem::take(&mut self.debug_enabled_scratch);
            let mut comm_rows = std::mem::take(&mut self.debug_comm_scratch);
            reference.clear();
            let comm_slice: &[P::Comm] = match self.comm_cache.as_slice() {
                Some(rows) => rows,
                None => {
                    comm_rows.clear();
                    for i in 0..self.comm_cache.len() {
                        comm_rows.push(self.comm_cache.get(i));
                    }
                    &comm_rows
                }
            };
            for p in self.graph.nodes() {
                let view = self.untracked_view(p, comm_slice);
                reference.push(self.config.with_row(p.index(), |state| {
                    self.protocol.is_enabled(self.graph, p, state, &view)
                }));
            }
            debug_assert_eq!(
                self.enabled.as_flags(),
                &reference[..],
                "incremental enabled set diverged from full recomputation at step {}",
                self.step
            );
            self.debug_enabled_scratch = reference;
            self.debug_comm_scratch = comm_rows;
        }
    }

    /// Executes one step: asks the scheduler for a selection, activates every
    /// selected process against the pre-step configuration, then applies all
    /// updates simultaneously.
    ///
    /// Allocation-free in steady state: selection, updates, read tracking
    /// and round bookkeeping all reuse persistent buffers (see the
    /// [module documentation](self)). The selected/executed process lists
    /// of the step remain readable through [`Simulation::last_selected`] /
    /// [`Simulation::last_executed`].
    pub fn step(&mut self) -> StepOutcome {
        self.refresh_enabled();
        #[cfg(debug_assertions)]
        self.debug_check_enabled_invariant();

        // One relaxed load per step; `None` (the default) keeps every
        // phase free of clock reads and metric writes.
        let metrics = metrics::active();

        self.selected_scratch.clear();
        // lint: allow(determinism) — phase timing feeds the metrics histograms only
        let phase_started = metrics.map(|_| std::time::Instant::now());
        let ctx = SchedulerContext {
            step: self.step,
            enabled: &self.enabled,
        };
        self.scheduler
            .select(&ctx, &mut self.rng, &mut self.selected_scratch);
        assert!(
            !self.selected_scratch.is_empty(),
            "schedulers must select a non-empty subset"
        );
        debug_assert!(
            self.selected_scratch.windows(2).all(|w| w[0] < w[1]),
            "scheduler {} violated the sorted/duplicate-free selection contract",
            self.scheduler.name()
        );
        if let (Some(m), Some(started)) = (metrics, phase_started) {
            m.phase(StepPhase::Selection)
                .record(self.selected_scratch.len() as u64, started.elapsed());
        }

        // Phase: activation staging, per shard. Every worker evaluates its
        // slice of the selection against the shared pre-step snapshot and
        // stages the resulting updates in its own scratch; nothing global
        // is mutated until the merge below.
        let tracing =
            self.options.record_trace || self.sink.as_ref().is_some_and(|sink| sink.is_recording());
        // Trace records are the one intentional per-step allocation: the
        // trace (or an attached sink) consumes them, so there is no
        // buffer to reuse. Off by default.
        let mut records: Vec<ActivationRecord> = Vec::new(); // lint: allow(hot-alloc) — the documented trace allocation (see above)
        if tracing {
            records.reserve(self.selected_scratch.len());
        }
        let step = self.step;
        // lint: allow(determinism) — phase timing feeds the metrics histograms only
        let phase_started = metrics.map(|_| std::time::Instant::now());
        let ctx = StepContext {
            graph: self.graph,
            protocol: &self.protocol,
            config: &self.config,
            comm_cache: &self.comm_cache,
            comm_slice: self.comm_cache.as_slice(),
            read_restriction: self.options.read_restriction.as_deref(),
            step,
            salt: self.activation_salt,
            tracing,
            use_kernel: false,
            kernel_threshold: 0,
        };
        let mut newly_selected = 0usize;
        let mut read_operations_delta = 0u64;
        let mut comm_changes_delta = 0u64;
        if self.shards.len() == 1 {
            // Sequential fast path: one stack-allocated task over the full
            // arrays and the whole selection.
            let mut splitter = self.stats.sharded();
            let len = self.config.len();
            let mut task = ActivationTask {
                node_base: 0,
                selected: &self.selected_scratch,
                selected_this_round: &mut self.selected_this_round,
                scratch: &mut self.shards[0],
                stats: splitter.take(0..len),
                newly_selected: 0,
            };
            run_activation_task(&mut task, &ctx);
            newly_selected = task.newly_selected;
            read_operations_delta = task.stats.read_operations;
            comm_changes_delta = task.stats.comm_changes;
        } else {
            let mut tasks = Vec::with_capacity(self.shards.len());
            let mut splitter = self.stats.sharded();
            let mut round_rest: &mut [bool] = &mut self.selected_this_round;
            let selected: &[NodeId] = &self.selected_scratch;
            let mut selected_cursor = 0usize;
            for (s, scratch) in self.shards.iter_mut().enumerate() {
                let range = self.partition.range(s);
                let (round_flags, rest) = round_rest.split_at_mut(range.len());
                round_rest = rest;
                // The selection is sorted, so each shard's share is the
                // contiguous run of ids below its range end.
                let selected_end = selected_cursor
                    + selected[selected_cursor..].partition_point(|p| p.index() < range.end);
                let shard_selected = &selected[selected_cursor..selected_end];
                selected_cursor = selected_end;
                tasks.push(ActivationTask {
                    node_base: range.start,
                    selected: shard_selected,
                    selected_this_round: round_flags,
                    scratch,
                    stats: splitter.take(range),
                    newly_selected: 0,
                });
            }
            if self.step_workers > 1
                && self.selected_scratch.len() >= self.options.parallel_work_threshold
            {
                run_shard_tasks(self.step_workers, &mut tasks, |task| {
                    run_activation_task(task, &ctx);
                });
            } else {
                for task in &mut tasks {
                    run_activation_task(task, &ctx);
                }
            }
            for task in &tasks {
                newly_selected += task.newly_selected;
                read_operations_delta += task.stats.read_operations;
                comm_changes_delta += task.stats.comm_changes;
            }
        }
        if let (Some(m), Some(started)) = (metrics, phase_started) {
            m.phase(StepPhase::Activation)
                .record(self.selected_scratch.len() as u64, started.elapsed());
        }
        // lint: allow(determinism) — phase timing feeds the metrics histograms only
        let phase_started = metrics.map(|_| std::time::Instant::now());
        // Merge phase, sequential and in shard order — deterministic
        // regardless of which worker ran which shard when. Apply all staged
        // updates simultaneously, maintaining the communication cache and
        // dirtying exactly the guards the updates may flip: the updated
        // process itself (guards read the own full state) and, when its
        // communication state changed, its neighbors (dirty marks route
        // back into the owning shard's queue). Shard-order concatenation of
        // the per-shard executed lists reproduces the global increasing-id
        // order, because shards tile the id space contiguously.
        self.stats.apply_step_deltas(
            read_operations_delta,
            comm_changes_delta,
            (comm_changes_delta > 0).then_some(step),
        );
        self.unselected_remaining -= newly_selected;
        let comm_changed_any = comm_changes_delta > 0;
        let graph = self.graph;
        self.executed_scratch.clear();
        for s in 0..self.shards.len() {
            self.executed_scratch
                .extend_from_slice(&self.shards[s].executed);
            // The staged buffer is swapped out and back so its capacity
            // persists across steps (mark_dirty below needs `&mut self`).
            let mut staged = std::mem::take(&mut self.shards[s].staged);
            for (p, state, comm, comm_changed) in staged.drain(..) {
                self.config.set(p.index(), &state);
                self.mark_dirty(p);
                if comm_changed {
                    self.comm_cache.set(p.index(), &comm);
                    for q in graph.neighbors(p) {
                        self.mark_dirty(q);
                    }
                }
            }
            self.shards[s].staged = staged;
            if tracing {
                records.append(&mut self.shards[s].records);
            }
        }
        // Phase-D metrics fold here, at the same barrier where the
        // per-shard stats deltas were merged above: the phase counters
        // observe the same deterministic merge point as `RunStats`.
        if let (Some(m), Some(started)) = (metrics, phase_started) {
            m.phase(StepPhase::Merge)
                .record(self.executed_scratch.len() as u64, started.elapsed());
        }
        if tracing {
            let record = StepRecord {
                step: self.step,
                activations: records,
            };
            if let Some(sink) = &mut self.sink {
                if sink.is_recording() {
                    sink.record_step(&record);
                }
            }
            if let Some(trace) = &mut self.trace {
                trace.push(record);
            }
        }

        self.step += 1;
        self.stats.steps = self.step;
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.unselected_remaining == 0,
            self.selected_this_round.iter().all(|&b| b),
            "round counter diverged from the selected-this-round flags at step {}",
            self.step
        );
        if self.unselected_remaining == 0 {
            self.rounds += 1;
            self.stats.rounds = self.rounds;
            for flag in &mut self.selected_this_round {
                *flag = false;
            }
            self.unselected_remaining = self.selected_this_round.len();
        }

        StepOutcome {
            selected: self.selected_scratch.len(),
            executed: self.executed_scratch.len(),
            comm_changed: comm_changed_any,
        }
    }

    /// Runs exactly `steps` steps.
    pub fn run_steps(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until the protocol's silence predicate holds (checked every
    /// `check_interval` steps) or `max_steps` further steps have been
    /// executed.
    ///
    /// # Example
    ///
    /// ```
    /// use selfstab_graph::generators;
    /// use selfstab_runtime::guarded::{ActionContext, GuardedAction, GuardedProtocol};
    /// use selfstab_runtime::scheduler::DistributedRandom;
    /// use selfstab_runtime::{SimOptions, Simulation};
    ///
    /// let adopt_min = GuardedAction::new(
    ///     "adopt-smaller-value",
    ///     |ctx: &ActionContext<'_, '_, u32, u32>| ctx.neighbor_comms().any(|v| v < ctx.state),
    ///     |ctx, _rng| ctx.neighbor_comms().copied().min().unwrap_or(*ctx.state),
    /// );
    /// let protocol = GuardedProtocol::new(
    ///     "min-propagation",
    ///     vec![adopt_min],
    ///     |_, p, _| p.index() as u32 + 1,
    ///     |_, state| *state,
    ///     |_, _| 32,
    ///     |_, _| 32,
    ///     |_, config| config.iter().all(|&v| v == 1),
    /// );
    ///
    /// let graph = generators::ring(8);
    /// let mut sim = Simulation::new(
    ///     &graph,
    ///     protocol,
    ///     DistributedRandom::new(0.5),
    ///     3,
    ///     SimOptions::default(),
    /// );
    /// let report = sim.run_until_silent(100_000);
    /// assert!(report.silent, "min-propagation quiesces");
    /// assert!(report.legitimate, "everyone holds the global minimum");
    /// assert_eq!(report.total_steps, sim.steps());
    /// ```
    pub fn run_until_silent(&mut self, max_steps: u64) -> RunReport {
        let start_steps = self.step;
        let start_rounds = self.rounds;
        let mut silent = self.is_silent();
        let mut executed: u64 = 0;
        while !silent && executed < max_steps {
            self.step();
            executed += 1;
            if executed.is_multiple_of(self.options.check_interval) {
                silent = self.is_silent();
            }
        }
        if !silent {
            silent = self.is_silent();
        }
        RunReport {
            silent,
            legitimate: self.is_legitimate(),
            steps: self.step - start_steps,
            rounds: self.rounds - start_rounds,
            total_steps: self.step,
            total_rounds: self.rounds,
        }
    }

    /// Runs until the legitimacy predicate holds or `max_steps` further steps
    /// have been executed.
    pub fn run_until_legitimate(&mut self, max_steps: u64) -> RunReport {
        let start_steps = self.step;
        let start_rounds = self.rounds;
        let mut legitimate = self.is_legitimate();
        let mut executed: u64 = 0;
        while !legitimate && executed < max_steps {
            self.step();
            executed += 1;
            if executed.is_multiple_of(self.options.check_interval) {
                legitimate = self.is_legitimate();
            }
        }
        if !legitimate {
            legitimate = self.is_legitimate();
        }
        RunReport {
            silent: self.is_silent(),
            legitimate,
            steps: self.step - start_steps,
            rounds: self.rounds - start_rounds,
            total_steps: self.step,
            total_rounds: self.rounds,
        }
    }

    fn allowed_ports(&self, p: NodeId) -> Option<&[Port]> {
        self.options
            .read_restriction
            .as_ref()
            .map(|restriction| restriction[p.index()].as_slice())
    }

    fn untracked_view<'c>(&self, p: NodeId, comm: &'c [P::Comm]) -> NeighborView<'c, P::Comm>
    where
        'g: 'c,
    {
        let view = NeighborView::from_snapshot(self.graph, p, comm, false);
        match self.allowed_ports(p) {
            Some(allowed) => view.restricted_to(allowed),
            None => view,
        }
    }

    /// Consumes the simulation and returns its final configuration, stats
    /// and optional trace (the configuration is decoded out of the columns
    /// under the SoA layout).
    pub fn into_parts(self) -> (Vec<P::State>, RunStats, Option<Trace>) {
        (self.config.into_vec(), self.stats, self.trace)
    }

    /// Mutable access to the RNG, for fault injection helpers that want to
    /// reuse the simulation's randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Per-shard scratch buffers: everything one worker thread writes during
/// the parallel phases of a step, sized once at construction so the steady
/// state stays allocation-free *per worker*.
struct ShardScratch<P: Protocol> {
    /// The shard's slice of the dirty set (each process listed once).
    dirty_queue: Vec<NodeId>,
    /// Staged updates `(process, state, comm, comm_changed)` awaiting the
    /// merge phase.
    staged: Vec<(NodeId, P::State, P::Comm, bool)>,
    /// Processes of this shard that executed in the current step.
    executed: Vec<NodeId>,
    /// Read-log buffer threaded through the tracked neighbor views (one
    /// activation at a time), so recording reads never allocates.
    read_log: Vec<Port>,
    /// Distinct ports of the current activation, first-read order.
    distinct_reads: Vec<Port>,
    /// Trace records staged by this shard (tracing only — the deliberate
    /// per-activation allocation documented on [`Simulation::step`]).
    records: Vec<ActivationRecord>,
    /// Lazy neighbor-decode scratch for views over a columnar communication
    /// store (unused — and empty — in the array-of-structs layout).
    gather: GatherBuffer<P::Comm>,
}

/// The shared read-only snapshot every shard task evaluates against.
///
/// Both stores are **read-only for the whole parallel span of a step**:
/// activations stage their writes in shard-private buffers and the
/// sequential merge phase applies them afterwards. Columnar stores
/// therefore need no mutable splitting — workers read disjoint contiguous
/// column windows (their [`NodePartition`] shard, plus neighbor cells
/// through the views), which is what makes the SoA layout and the sharded
/// executor compose without any new synchronization.
struct StepContext<'a, P: Protocol> {
    graph: &'a Graph,
    protocol: &'a P,
    config: &'a StateStore<P::State>,
    comm_cache: &'a StateStore<P::Comm>,
    /// Cached `comm_cache.as_slice()`: `Some` selects the borrowed-slice
    /// views (AoS), `None` the lazily gathered views (SoA).
    comm_slice: Option<&'a [P::Comm]>,
    read_restriction: Option<&'a [Vec<Port>]>,
    step: u64,
    salt: u64,
    tracing: bool,
    /// Whether the guard-refresh phase may dispatch to the protocol's bulk
    /// kernel (options enable it, the protocol has one, and no read
    /// restriction is installed). Always `false` for the activation phase.
    use_kernel: bool,
    /// Minimum per-shard batch size for the kernel path
    /// ([`SimOptions::guard_kernel_threshold`]).
    kernel_threshold: usize,
}

impl<'a, P: Protocol> StepContext<'a, P> {
    fn allowed_ports(&self, p: NodeId) -> Option<&'a [Port]> {
        self.read_restriction
            .map(|restriction| restriction[p.index()].as_slice())
    }

    fn restrict<'v>(
        &self,
        p: NodeId,
        view: NeighborView<'v, P::Comm>,
    ) -> NeighborView<'v, P::Comm> {
        match self.allowed_ports(p) {
            Some(allowed) => view.restricted_to(allowed),
            None => view,
        }
    }
}

/// One shard's guard-refresh work item: drain the shard's dirty queue
/// against its disjoint windows of the dirty and enabled-flag arrays.
struct GuardTask<'a, C> {
    node_base: usize,
    queue: &'a mut Vec<NodeId>,
    dirty: &'a mut [bool],
    enabled: &'a mut [bool],
    /// Neighbor-decode scratch for the columnar layout (the owning shard's).
    gather: &'a mut GatherBuffer<C>,
    guard_evaluations: u64,
    enabled_delta: isize,
}

fn run_guard_task<P: Protocol>(task: &mut GuardTask<'_, P::Comm>, ctx: &StepContext<'_, P>) {
    // Bulk path: hand the whole batch to the protocol's columnar kernel.
    // The writer replicates the scalar flag-flip/delta bookkeeping below
    // and the executor charges one evaluation per dequeued node either
    // way, so the two paths are observably identical. A declined batch
    // (row-layout store, or no kernel for this store shape) falls through
    // to the scalar loop, which re-clears the dirty flags harmlessly.
    if ctx.use_kernel && !task.queue.is_empty() && task.queue.len() >= ctx.kernel_threshold {
        for &p in task.queue.iter() {
            task.dirty[p.index() - task.node_base] = false;
        }
        let mut writer = EnabledWriter::new(task.node_base, task.enabled);
        if ctx.protocol.refresh_guards_bulk(
            ctx.graph,
            ctx.config,
            ctx.comm_cache,
            task.queue,
            &mut writer,
        ) {
            task.guard_evaluations += task.queue.len() as u64;
            task.enabled_delta += writer.delta();
            task.queue.clear();
            return;
        }
    }
    for i in 0..task.queue.len() {
        let p = task.queue[i];
        let local = p.index() - task.node_base;
        task.dirty[local] = false;
        let now_enabled = match ctx.comm_slice {
            Some(comm) => {
                let view = ctx.restrict(p, NeighborView::from_snapshot(ctx.graph, p, comm, false));
                ctx.config.with_row(p.index(), |state| {
                    ctx.protocol.is_enabled(ctx.graph, p, state, &view)
                })
            }
            None => {
                let fetch = |q: NodeId| ctx.comm_cache.get(q.index());
                let view = ctx.restrict(
                    p,
                    NeighborView::gathered(ctx.graph, p, task.gather, &fetch, false),
                );
                let enabled = ctx.config.with_row(p.index(), |state| {
                    ctx.protocol.is_enabled(ctx.graph, p, state, &view)
                });
                drop(view);
                task.gather.reset();
                enabled
            }
        };
        task.guard_evaluations += 1;
        let flag = &mut task.enabled[local];
        if *flag != now_enabled {
            task.enabled_delta += if now_enabled { 1 } else { -1 };
            *flag = now_enabled;
        }
    }
    task.queue.clear();
}

/// One shard's activation-staging work item: evaluate the shard's slice of
/// the (sorted) selection against the pre-step snapshot, staging updates
/// and statistics in shard-private buffers.
struct ActivationTask<'a, P: Protocol> {
    node_base: usize,
    selected: &'a [NodeId],
    selected_this_round: &'a mut [bool],
    scratch: &'a mut ShardScratch<P>,
    stats: StatsShard<'a>,
    newly_selected: usize,
}

fn run_activation_task<P: Protocol>(task: &mut ActivationTask<'_, P>, ctx: &StepContext<'_, P>) {
    debug_assert!(task.scratch.staged.is_empty());
    task.scratch.executed.clear();
    if ctx.tracing {
        task.scratch.records.reserve(task.selected.len());
    }
    for &p in task.selected {
        task.stats.record_selection(p);
        let local = p.index() - task.node_base;
        if !task.selected_this_round[local] {
            task.selected_this_round[local] = true;
            task.newly_selected += 1;
        }
        let log_buffer = std::mem::take(&mut task.scratch.read_log);
        let fetch = |q: NodeId| ctx.comm_cache.get(q.index());
        let view = match ctx.comm_slice {
            Some(comm) => NeighborView::with_log_buffer(ctx.graph, p, comm, true, log_buffer),
            None => NeighborView::gathered_with_log_buffer(
                ctx.graph,
                p,
                &task.scratch.gather,
                &fetch,
                true,
                log_buffer,
            ),
        };
        let view = ctx.restrict(p, view);
        // A private, deterministically derived RNG per activation: the
        // stream depends only on (seed, step, process), never on which
        // worker runs the activation or in what order.
        let mut rng = activation_rng(ctx.salt, ctx.step, p);
        let new_state = ctx.config.with_row(p.index(), |state| {
            ctx.protocol.activate(ctx.graph, p, state, &view, &mut rng)
        });
        let read_operations = view.read_operations();
        // The distinct-read set: collected into the shard's persistent
        // scratch normally, or — when tracing — straight into the
        // exactly-sized `Vec` the `ActivationRecord` will own, so the one
        // documented trace allocation is also the only scan (the seed
        // executor deduplicated into the scratch and then cloned it).
        let mut traced_reads = Vec::new(); // lint: allow(hot-alloc) — the documented trace allocation (see above)
        let reads_buf: &mut Vec<Port> = if ctx.tracing {
            traced_reads.reserve_exact(read_operations.min(ctx.graph.degree(p)));
            &mut traced_reads
        } else {
            &mut task.scratch.distinct_reads
        };
        view.collect_distinct_reads(reads_buf);
        task.scratch.read_log = view.into_log_buffer();
        task.scratch.gather.reset();
        let did_execute = new_state.is_some();
        let mut comm_changed = false;
        if let Some(new_state) = new_state {
            let new_comm = ctx.protocol.comm(p, &new_state);
            comm_changed = ctx.comm_cache.with_row(p.index(), |old| new_comm != *old);
            task.scratch.executed.push(p);
            task.stats.record_activation(p, reads_buf, read_operations);
            if comm_changed {
                task.stats.record_comm_change(p, ctx.step);
            }
            task.scratch
                .staged
                .push((p, new_state, new_comm, comm_changed));
        } else {
            // A disabled selected process does nothing, but its guard
            // evaluation is still an activation for accounting purposes
            // when it read something.
            task.stats.record_activation(p, reads_buf, read_operations);
        }
        if ctx.tracing {
            task.scratch.records.push(ActivationRecord {
                process: p,
                executed: did_execute,
                reads: traced_reads,
                comm_changed,
            });
        }
    }
}

/// The private RNG of one activation, seeded from the simulation salt,
/// the step index and the process id — so the random stream a protocol
/// sees depends only on `(seed, step, process)`, never on which worker
/// ran the activation or how many workers there are.
///
/// Expansion of the seed into generator state is **lazy**: protocols that
/// never draw during `activate` (MIS, matching, the min-value test
/// protocols — the synchronous hot path at 10⁶ activations per step) pay
/// one branch per activation instead of a full `seed_from_u64`.
struct ActivationRng {
    seed: u64,
    inner: Option<StdRng>,
}

impl ActivationRng {
    #[inline]
    fn rng(&mut self) -> &mut StdRng {
        self.inner
            .get_or_insert_with(|| StdRng::seed_from_u64(self.seed))
    }
}

impl rand::RngCore for ActivationRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.rng().next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.rng().next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng().fill_bytes(dest)
    }
}

/// Derives the private RNG of one activation (a SplitMix64 finalizer over
/// the salt/step/process mix; see [`ActivationRng`]).
fn activation_rng(salt: u64, step: u64, p: NodeId) -> ActivationRng {
    let mut z = salt
        ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (p.index() as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ActivationRng {
        seed: z,
        inner: None,
    }
}

/// Dispatches shard tasks to `workers` scoped threads with the same
/// atomic-cursor claiming the campaign engine uses: workers `fetch_add` an
/// index and run the claimed task. Each slot's mutex is locked exactly once
/// (the cursor hands every index to exactly one worker); the mutexes exist
/// to hand `&mut` task borrows across the thread boundary without `unsafe`.
///
/// Worker threads mark themselves via [`crate::probes`] so the
/// zero-allocation test can count worker-side allocations (the hot path
/// forbids them) separately from this function's own coordinator-side
/// bookkeeping (task list, thread spawning), which is deliberate and
/// per-step `O(workers)`.
fn run_shard_tasks<T: Send>(workers: usize, tasks: &mut [T], run: impl Fn(&mut T) + Sync) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let cursor = AtomicUsize::new(0);
    // lint: allow(hot-alloc) — coordinator-side slot list, O(shards) per step
    let slots: Vec<Mutex<&mut T>> = tasks.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        let spawned = workers.min(slots.len());
        let handles: Vec<_> = (0..spawned)
            .map(|_| {
                scope.spawn(|| {
                    crate::probes::enter_step_worker();
                    loop {
                        let claimed = cursor.fetch_add(1, Ordering::Relaxed); // ordering: unique-index handout; slot data is mutex-guarded
                        if claimed >= slots.len() {
                            break;
                        }
                        let mut slot = slots[claimed].lock().expect("shard task mutex poisoned");
                        run(&mut slot);
                    }
                    crate::probes::exit_step_worker();
                })
            })
            .collect(); // lint: allow(hot-alloc) — coordinator-side handle list
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

/// Runs one self-contained experiment **cell**: builds a [`Simulation`] from
/// its owned inputs, drives it to silence (or until `max_steps` further
/// steps), and extracts a result through `measure`.
///
/// This is the entry point parallel experiment campaigns use. Every mutable
/// piece of a cell is owned by the call — the protocol, the scheduler, the
/// configuration, and the [`StdRng`] seeded from `seed` — so any number of
/// `run_cell` invocations may execute concurrently on different threads
/// without sharing mutable state. [`Simulation`] itself is `Send` whenever
/// the protocol, scheduler, and their state types are `Send` (every protocol
/// and scheduler in this workspace is; the `send_bounds` test module pins
/// this down), so a cell may also be constructed on one thread and finished
/// on another.
///
/// The `measure` closure receives the [`RunReport`] of the silence run plus
/// the simulation itself, ready for post-stabilization driving
/// ([`Simulation::mark_suffix`], [`Simulation::run_steps`]) and metric
/// extraction.
///
/// # Example
///
/// ```
/// use selfstab_graph::generators;
/// use selfstab_runtime::guarded::{ActionContext, GuardedAction, GuardedProtocol};
/// use selfstab_runtime::scheduler::Synchronous;
/// use selfstab_runtime::{run_cell, SimOptions};
///
/// let adopt_min = GuardedAction::new(
///     "adopt-smaller-value",
///     |ctx: &ActionContext<'_, '_, u32, u32>| ctx.neighbor_comms().any(|v| v < ctx.state),
///     |ctx, _rng| ctx.neighbor_comms().copied().min().unwrap_or(*ctx.state),
/// );
/// let protocol = GuardedProtocol::new(
///     "min-propagation",
///     vec![adopt_min],
///     |_, p, _| p.index() as u32 + 1,
///     |_, state: &u32| *state,
///     |_, _| 32,
///     |_, _| 32,
///     |_, config: &[u32]| config.iter().all(|&v| v == 1),
/// );
/// let graph = generators::ring(8);
/// let steps = run_cell(
///     &graph,
///     protocol,
///     Synchronous,
///     7,
///     SimOptions::default(),
///     10_000,
///     |report, _sim| {
///         assert!(report.silent);
///         report.total_steps
///     },
/// );
/// assert!(steps > 0);
/// ```
pub fn run_cell<P, S, M, F>(
    graph: &Graph,
    protocol: P,
    scheduler: S,
    seed: u64,
    options: SimOptions,
    max_steps: u64,
    measure: F,
) -> M
where
    P: Protocol,
    S: Scheduler,
    F: FnOnce(RunReport, &mut Simulation<'_, P, S>) -> M,
{
    let mut sim = Simulation::new(graph, protocol, scheduler, seed, options);
    let report = sim.run_until_silent(max_steps);
    measure(report, &mut sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{CentralRoundRobin, DistributedRandom, Synchronous};
    use rand::RngCore;
    use selfstab_graph::generators;

    /// Toy silent protocol used to exercise the executor: each process
    /// exposes a value and copies the minimum of its own value and its
    /// neighbors' values. Stabilizes to "everyone holds the global minimum".
    struct MinValue;

    impl Protocol for MinValue {
        type State = u32;
        type Comm = u32;

        fn name(&self) -> &'static str {
            "min-value"
        }

        fn arbitrary_state(&self, _graph: &Graph, p: NodeId, _rng: &mut dyn RngCore) -> u32 {
            (p.index() as u32) * 7 + 3
        }

        fn comm(&self, _p: NodeId, state: &u32) -> u32 {
            *state
        }

        fn is_enabled(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
        ) -> bool {
            (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
        }

        fn activate(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
            _rng: &mut dyn RngCore,
        ) -> Option<u32> {
            let min = (0..graph.degree(p))
                .map(|i| *view.read(Port::new(i)))
                .min()
                .unwrap_or(*state);
            (min < *state).then_some(min)
        }

        fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
            let min = config.iter().min().copied().unwrap_or(0);
            config.iter().all(|&v| v == min)
        }
    }

    /// Compile-time Send audit: experiment campaigns move cells across
    /// worker threads, so a [`Simulation`] over Send protocol/scheduler
    /// types must itself be Send (and the concrete schedulers must be Send
    /// individually — see the matching assertions in `scheduler::tests` and
    /// `guarded::tests`).
    #[test]
    fn simulation_is_send_for_send_protocol_and_scheduler() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<'static, MinValue, Synchronous>>();
        assert_send::<Simulation<'static, MinValue, DistributedRandom>>();
        assert_send::<
            Simulation<
                'static,
                crate::guarded::GuardedProtocol<u32, u32>,
                Box<dyn crate::scheduler::Scheduler + Send>,
            >,
        >();
    }

    #[test]
    fn run_cell_matches_a_hand_driven_simulation() {
        let graph = generators::ring(8);
        let cell_steps = run_cell(
            &graph,
            MinValue,
            DistributedRandom::new(0.4),
            3,
            SimOptions::default(),
            10_000,
            |report, sim| {
                assert!(report.silent);
                assert_eq!(report.total_steps, sim.steps());
                report.total_steps
            },
        );
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            DistributedRandom::new(0.4),
            3,
            SimOptions::default(),
        );
        let report = sim.run_until_silent(10_000);
        assert_eq!(cell_steps, report.total_steps);
    }

    #[test]
    fn synchronous_run_reaches_the_minimum() {
        let graph = generators::path(6);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 1, SimOptions::default());
        let report = sim.run_until_silent(100);
        assert!(report.silent);
        assert!(report.legitimate);
        assert!(sim.config().iter().all(|&v| v == 3));
        // On a path of 6, information travels end to end in at most 5
        // synchronous steps.
        assert!(report.steps <= 6);
        // Under the synchronous daemon every step is a round.
        assert_eq!(report.steps, report.rounds);
    }

    #[test]
    fn step_outcome_and_last_step_accessors_agree() {
        let graph = generators::path(4);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 1, SimOptions::default());
        assert!(sim.last_selected().is_empty());
        assert!(sim.last_executed().is_empty());
        let outcome = sim.step();
        assert_eq!(outcome.selected, 4, "synchronous selects everyone");
        assert_eq!(sim.last_selected().len(), outcome.selected);
        assert_eq!(sim.last_executed().len(), outcome.executed);
        assert!(sim
            .last_executed()
            .iter()
            .all(|p| sim.last_selected().contains(p)));
        // Selected list is sorted and duplicate-free per the contract.
        assert!(sim.last_selected().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn round_robin_counts_rounds_correctly() {
        let graph = generators::ring(4);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            CentralRoundRobin::new(),
            2,
            SimOptions::default(),
        );
        sim.run_steps(12);
        // One process per step, 4 processes: 12 steps = 3 rounds.
        assert_eq!(sim.rounds(), 3);
        assert_eq!(sim.steps(), 12);
    }

    #[test]
    fn distributed_random_converges_and_tracks_reads() {
        let graph = generators::ring(8);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            DistributedRandom::new(0.4),
            3,
            SimOptions::default().with_trace(),
        );
        let report = sim.run_until_silent(10_000);
        assert!(report.silent);
        // MinValue reads both neighbors each activation: it is 2-efficient
        // (Δ-efficient), not 1-efficient.
        assert_eq!(sim.stats().measured_efficiency(), 2);
        let trace = sim.trace().expect("trace enabled");
        assert_eq!(trace.measured_efficiency(), 2);
        assert!(trace.len() as u64 == report.total_steps);
    }

    #[test]
    fn with_config_runs_from_explicit_configuration() {
        let graph = generators::path(3);
        let config = vec![5, 9, 1];
        let mut sim = Simulation::with_config(
            &graph,
            MinValue,
            Synchronous,
            config,
            7,
            SimOptions::default(),
        );
        assert!(!sim.is_legitimate());
        let report = sim.run_until_legitimate(50);
        assert!(report.legitimate);
        assert_eq!(sim.config(), &[1, 1, 1]);
    }

    #[test]
    fn read_restriction_is_honored() {
        let graph = generators::path(3);
        // The middle process may only read its port 0; ends read nothing.
        let restriction = vec![vec![], vec![Port::new(0)], vec![]];
        let config = vec![5, 9, 1];
        let mut sim = Simulation::with_config(
            &graph,
            RestrictedMin,
            Synchronous,
            config,
            7,
            SimOptions::default().with_read_restriction(restriction),
        );
        sim.run_steps(10);
        // The middle process can only see process 0 (value 5): it converges
        // to 5, never to 1.
        assert_eq!(sim.config()[1], 5);
        assert_eq!(
            sim.stats().process(NodeId::new(1)).max_reads_per_activation,
            1
        );
        assert_eq!(
            sim.stats().process(NodeId::new(0)).max_reads_per_activation,
            0
        );
    }

    /// Variant of [`MinValue`] that tolerates read restrictions by using
    /// `try_read`.
    struct RestrictedMin;

    impl Protocol for RestrictedMin {
        type State = u32;
        type Comm = u32;

        fn name(&self) -> &'static str {
            "restricted-min"
        }

        fn arbitrary_state(&self, _graph: &Graph, p: NodeId, _rng: &mut dyn RngCore) -> u32 {
            p.index() as u32
        }

        fn comm(&self, _p: NodeId, state: &u32) -> u32 {
            *state
        }

        fn is_enabled(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
        ) -> bool {
            (0..graph.degree(p))
                .filter_map(|i| view.try_read(Port::new(i)))
                .any(|v| v < state)
        }

        fn activate(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
            _rng: &mut dyn RngCore,
        ) -> Option<u32> {
            let min = (0..graph.degree(p))
                .filter_map(|i| view.try_read(Port::new(i)))
                .min()
                .copied()
                .unwrap_or(*state);
            (min < *state).then_some(min)
        }

        fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
            let min = config.iter().min().copied().unwrap_or(0);
            config.iter().all(|&v| v == min)
        }
    }

    #[test]
    fn suffix_marker_supports_stability_measurement() {
        let graph = generators::ring(5);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 11, SimOptions::default());
        sim.run_until_silent(100);
        sim.mark_suffix();
        sim.run_steps(5);
        // After stabilization MinValue processes are disabled, but each
        // activation still reads both neighbors to discover that (exactly the
        // "check every neighbor forever" cost the paper wants to avoid), so
        // every process is 2-stable but not 1-stable on the suffix.
        assert_eq!(sim.stats().stable_process_count(2), 5);
        assert_eq!(sim.stats().stable_process_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "one state per process")]
    fn with_config_rejects_wrong_length() {
        let graph = generators::path(3);
        let _ = Simulation::with_config(
            &graph,
            MinValue,
            Synchronous,
            vec![1, 2],
            0,
            SimOptions::default(),
        );
    }

    #[test]
    fn enabled_set_matches_full_recomputation_throughout_a_run() {
        let graph = generators::grid(4, 4);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            DistributedRandom::new(0.3),
            19,
            SimOptions::default(),
        );
        for _ in 0..200 {
            let reference = sim.recompute_enabled_reference();
            assert_eq!(sim.enabled_set().as_flags(), &reference[..]);
            sim.step();
        }
        // Once silent, nothing is enabled and nothing is dirty.
        sim.run_until_silent(10_000);
        assert_eq!(sim.enabled_set().count(), 0);
    }

    #[test]
    fn incremental_and_full_recompute_produce_identical_runs() {
        let graph = generators::gnp_connected(24, 0.2, &mut StdRng::seed_from_u64(77))
            .expect("valid parameters");
        for seed in 0..5u64 {
            let mut fast = Simulation::new(
                &graph,
                MinValue,
                DistributedRandom::new(0.4),
                seed,
                SimOptions::default().with_trace(),
            );
            let mut reference = Simulation::new(
                &graph,
                MinValue,
                DistributedRandom::new(0.4),
                seed,
                SimOptions::default().with_trace().with_full_recompute(),
            );
            let fast_report = fast.run_until_silent(50_000);
            let reference_report = reference.run_until_silent(50_000);
            assert_eq!(fast_report, reference_report);
            assert_eq!(fast.config(), reference.config());
            assert_eq!(fast.stats(), reference.stats());
            assert_eq!(fast.trace(), reference.trace());
            // The whole point: the incremental executor evaluates far fewer
            // guards (the run must be long enough for the saving to show).
            assert!(fast.guard_evaluations() <= reference.guard_evaluations());
        }
    }

    #[test]
    fn step_outcome_comm_changed_agrees_with_stats_accounting() {
        // Regression test: `StepOutcome::comm_changed` and the per-process
        // `record_comm_change` accounting must describe the same events
        // (the seed executor derived them from two separate passes).
        let graph = generators::ring(6);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            DistributedRandom::new(0.5),
            13,
            SimOptions::default().with_trace(),
        );
        let mut changes_before = sim.stats().total_comm_changes();
        for _ in 0..300 {
            let step_index = sim.steps();
            let outcome = sim.step();
            let changes_after = sim.stats().total_comm_changes();
            assert_eq!(
                outcome.comm_changed,
                changes_after > changes_before,
                "StepOutcome::comm_changed disagrees with RunStats at step {step_index}"
            );
            if outcome.comm_changed {
                assert_eq!(sim.stats().last_comm_change_step(), Some(step_index));
            }
            // The trace's per-activation records must agree as well.
            let record = sim.trace().expect("trace enabled").steps().last().unwrap();
            assert_eq!(record.any_comm_changed(), outcome.comm_changed);
            assert_eq!(
                record.activations.iter().filter(|a| a.comm_changed).count() as u64,
                changes_after - changes_before,
            );
            // The record's selection matches the scratch-backed accessor.
            assert_eq!(record.selected(), sim.last_selected());
            changes_before = changes_after;
        }
    }

    #[test]
    fn fault_injection_reenables_guards() {
        let graph = generators::ring(8);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 23, SimOptions::default());
        sim.run_until_silent(1_000);
        assert_eq!(sim.enabled_set().count(), 0, "silent: nothing enabled");
        // Drop a smaller value into process 4: its neighbors become enabled.
        sim.set_state(NodeId::new(4), 0);
        let reference = sim.recompute_enabled_reference();
        assert_eq!(sim.enabled_set().as_flags(), &reference[..]);
        assert!(
            sim.enabled_set().count() > 0,
            "the fault re-enabled the neighborhood"
        );
    }

    #[test]
    fn guard_evaluation_counter_reflects_incrementality() {
        let graph = generators::ring(64);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            CentralRoundRobin::new(),
            3,
            SimOptions::default(),
        );
        sim.run_until_silent(10_000);
        // Flush the guards left dirty by the final step, then count.
        let _ = sim.enabled_set();
        let after_convergence = sim.guard_evaluations();
        // Post-silence stepping must not evaluate any guard at all.
        sim.run_steps(1_000);
        assert_eq!(sim.guard_evaluations(), after_convergence);

        let mut reference = Simulation::new(
            &graph,
            MinValue,
            CentralRoundRobin::new(),
            3,
            SimOptions::default().with_full_recompute(),
        );
        reference.run_until_silent(10_000);
        let reference_after = reference.guard_evaluations();
        reference.run_steps(1_000);
        // The reference pays n guard evaluations for every silent step.
        assert_eq!(reference.guard_evaluations(), reference_after + 1_000 * 64);
    }

    #[test]
    fn round_counter_matches_flag_scan_under_mixed_daemons() {
        // The O(1) round counter must agree with the historical O(n) flag
        // scan (also debug_asserted on every step) across daemons that
        // select one process, several, or everyone.
        let graph = generators::grid(3, 3);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            DistributedRandom::new(0.35),
            5,
            SimOptions::default(),
        );
        let mut seen = [false; 9];
        let mut rounds = 0u64;
        for _ in 0..500 {
            sim.step();
            for p in sim.last_selected() {
                seen[p.index()] = true;
            }
            if seen.iter().all(|&b| b) {
                rounds += 1;
                seen.iter_mut().for_each(|b| *b = false);
            }
            assert_eq!(sim.rounds(), rounds);
        }
    }
}

//! The simulation engine: drives a protocol under a scheduler.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab_graph::{Graph, NodeId, Port};
use serde::{Deserialize, Serialize};

use crate::protocol::Protocol;
use crate::scheduler::{Scheduler, SchedulerContext};
use crate::stats::RunStats;
use crate::trace::{ActivationRecord, StepRecord, Trace};
use crate::view::NeighborView;

/// Options controlling a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Record a full [`Trace`] (per-step records). Costs memory linear in
    /// the number of steps; the aggregated [`RunStats`] are always kept.
    pub record_trace: bool,
    /// How many steps apart the silence/legitimacy predicates are evaluated
    /// while running to completion (1 = every step).
    pub check_interval: u64,
    /// Optional per-process read restriction: process `p` may only read the
    /// listed ports. Used by the impossibility experiments to model
    /// protocols that have committed to never read some neighbors again.
    pub read_restriction: Option<Vec<Vec<Port>>>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { record_trace: false, check_interval: 1, read_restriction: None }
    }
}

impl SimOptions {
    /// Enables full trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the silence-check interval (clamped to at least 1).
    #[must_use]
    pub fn with_check_interval(mut self, interval: u64) -> Self {
        self.check_interval = interval.max(1);
        self
    }

    /// Restricts the ports each process may read (indexed by process).
    #[must_use]
    pub fn with_read_restriction(mut self, restriction: Vec<Vec<Port>>) -> Self {
        self.read_restriction = Some(restriction);
        self
    }
}

/// Summary of a [`Simulation::run_until_silent`] call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Whether the run reached a silent configuration before the step limit.
    pub silent: bool,
    /// Whether the final configuration satisfies the legitimacy predicate.
    pub legitimate: bool,
    /// Steps executed by this call.
    pub steps: u64,
    /// Rounds completed by this call (paper definition: every process
    /// selected at least once per round).
    pub rounds: u64,
    /// Total steps executed by the simulation since construction.
    pub total_steps: u64,
    /// Total rounds completed by the simulation since construction.
    pub total_rounds: u64,
}

/// What happened during a single step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// Processes selected by the scheduler.
    pub selected: Vec<NodeId>,
    /// Processes that executed an enabled action.
    pub executed: Vec<NodeId>,
    /// Whether any communication variable changed.
    pub comm_changed: bool,
}

/// A running execution of `protocol` on `graph` under `scheduler`.
///
/// The simulation owns the configuration (one [`Protocol::State`] per
/// process) and advances it step by step following the paper's semantics:
/// all processes selected in a step evaluate their guards against the same
/// pre-step configuration, then all resulting state updates are applied
/// simultaneously (composite atomicity under a distributed daemon).
pub struct Simulation<'g, P: Protocol, S: Scheduler> {
    graph: &'g Graph,
    protocol: P,
    scheduler: S,
    rng: StdRng,
    config: Vec<P::State>,
    stats: RunStats,
    trace: Option<Trace>,
    options: SimOptions,
    step: u64,
    rounds: u64,
    selected_this_round: Vec<bool>,
}

impl<'g, P: Protocol, S: Scheduler> Simulation<'g, P, S> {
    /// Creates a simulation from an **arbitrary random** initial
    /// configuration (the self-stabilization setting: transient faults may
    /// have left anything in the variables).
    pub fn new(graph: &'g Graph, protocol: P, scheduler: S, seed: u64, options: SimOptions) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let config: Vec<P::State> = graph
            .nodes()
            .map(|p| protocol.arbitrary_state(graph, p, &mut rng))
            .collect();
        Self::with_config(graph, protocol, scheduler, config, seed.wrapping_add(1), options)
    }

    /// Creates a simulation from an explicit initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.len()` does not match the process count.
    pub fn with_config(
        graph: &'g Graph,
        protocol: P,
        scheduler: S,
        config: Vec<P::State>,
        seed: u64,
        options: SimOptions,
    ) -> Self {
        assert_eq!(
            config.len(),
            graph.node_count(),
            "configuration must contain one state per process"
        );
        let degrees: Vec<usize> = graph.nodes().map(|p| graph.degree(p)).collect();
        let trace = options.record_trace.then(Trace::new);
        Simulation {
            graph,
            protocol,
            scheduler,
            rng: StdRng::seed_from_u64(seed),
            config,
            stats: RunStats::new(&degrees),
            trace,
            options,
            step: 0,
            rounds: 0,
            selected_this_round: vec![false; graph.node_count()],
        }
    }

    /// The simulated topology.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The current configuration (one state per process).
    pub fn config(&self) -> &[P::State] {
        &self.config
    }

    /// The current communication configuration (one communication state per
    /// process).
    pub fn comm_config(&self) -> Vec<P::Comm> {
        self.graph
            .nodes()
            .map(|p| self.protocol.comm(p, &self.config[p.index()]))
            .collect()
    }

    /// Aggregated execution statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The recorded trace, if trace recording was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Total steps executed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Total rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Evaluates the protocol's legitimacy predicate on the current
    /// configuration.
    pub fn is_legitimate(&self) -> bool {
        self.protocol.is_legitimate(self.graph, &self.config)
    }

    /// Evaluates the protocol's silence predicate on the current
    /// configuration.
    pub fn is_silent(&self) -> bool {
        self.protocol.is_silent_config(self.graph, &self.config)
    }

    /// Places the suffix marker for ♦-stability measurements at the current
    /// step (see [`RunStats::mark_suffix`]).
    pub fn mark_suffix(&mut self) {
        self.stats.mark_suffix(self.step);
    }

    /// Replaces the state of process `p` (used by fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set_state(&mut self, p: NodeId, state: P::State) {
        self.config[p.index()] = state;
    }

    /// Executes one step: asks the scheduler for a selection, activates every
    /// selected process against the pre-step configuration, then applies all
    /// updates simultaneously.
    pub fn step(&mut self) -> StepOutcome {
        let comm_before: Vec<P::Comm> = self.comm_config();
        let enabled: Vec<bool> = self
            .graph
            .nodes()
            .map(|p| {
                let view = self.untracked_view(p, &comm_before);
                self.protocol.is_enabled(self.graph, p, &self.config[p.index()], &view)
            })
            .collect();

        let ctx = SchedulerContext { step: self.step, enabled: &enabled };
        let mut selected = self.scheduler.select(&ctx, &mut self.rng);
        selected.sort();
        selected.dedup();
        assert!(!selected.is_empty(), "schedulers must select a non-empty subset");

        let mut executed = Vec::new();
        let mut updates: Vec<(NodeId, P::State)> = Vec::new();
        let mut records: Vec<ActivationRecord> = Vec::new();
        for &p in &selected {
            self.stats.record_selection(p);
            self.selected_this_round[p.index()] = true;
            let view = self.tracked_view(p, &comm_before);
            let new_state =
                self.protocol
                    .activate(self.graph, p, &self.config[p.index()], &view, &mut self.rng);
            let reads = view.reads();
            let read_operations = view.read_operations();
            let did_execute = new_state.is_some();
            let mut comm_changed = false;
            if let Some(new_state) = new_state {
                comm_changed = self.protocol.comm(p, &new_state) != comm_before[p.index()];
                executed.push(p);
                self.stats.record_activation(p, &reads, read_operations);
                if comm_changed {
                    self.stats.record_comm_change(p, self.step);
                }
                updates.push((p, new_state));
            } else {
                // A disabled selected process does nothing, but its guard
                // evaluation is still an activation for accounting purposes
                // when it read something.
                self.stats.record_activation(p, &reads, read_operations);
            }
            if self.options.record_trace {
                records.push(ActivationRecord {
                    process: p,
                    executed: did_execute,
                    reads,
                    comm_changed,
                });
            }
        }
        // Apply all updates simultaneously.
        let comm_changed_any = updates
            .iter()
            .any(|(p, s)| self.protocol.comm(*p, s) != comm_before[p.index()]);
        for (p, state) in updates {
            self.config[p.index()] = state;
        }
        if let Some(trace) = &mut self.trace {
            trace.push(StepRecord { step: self.step, activations: records });
        }

        self.step += 1;
        self.stats.steps = self.step;
        if self.selected_this_round.iter().all(|&b| b) {
            self.rounds += 1;
            self.stats.rounds = self.rounds;
            for flag in &mut self.selected_this_round {
                *flag = false;
            }
        }

        StepOutcome { selected, executed, comm_changed: comm_changed_any }
    }

    /// Runs exactly `steps` steps.
    pub fn run_steps(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until the protocol's silence predicate holds (checked every
    /// `check_interval` steps) or `max_steps` further steps have been
    /// executed.
    pub fn run_until_silent(&mut self, max_steps: u64) -> RunReport {
        let start_steps = self.step;
        let start_rounds = self.rounds;
        let mut silent = self.is_silent();
        let mut executed: u64 = 0;
        while !silent && executed < max_steps {
            self.step();
            executed += 1;
            if executed % self.options.check_interval == 0 {
                silent = self.is_silent();
            }
        }
        if !silent {
            silent = self.is_silent();
        }
        RunReport {
            silent,
            legitimate: self.is_legitimate(),
            steps: self.step - start_steps,
            rounds: self.rounds - start_rounds,
            total_steps: self.step,
            total_rounds: self.rounds,
        }
    }

    /// Runs until the legitimacy predicate holds or `max_steps` further steps
    /// have been executed.
    pub fn run_until_legitimate(&mut self, max_steps: u64) -> RunReport {
        let start_steps = self.step;
        let start_rounds = self.rounds;
        let mut legitimate = self.is_legitimate();
        let mut executed: u64 = 0;
        while !legitimate && executed < max_steps {
            self.step();
            executed += 1;
            if executed % self.options.check_interval == 0 {
                legitimate = self.is_legitimate();
            }
        }
        if !legitimate {
            legitimate = self.is_legitimate();
        }
        RunReport {
            silent: self.is_silent(),
            legitimate,
            steps: self.step - start_steps,
            rounds: self.rounds - start_rounds,
            total_steps: self.step,
            total_rounds: self.rounds,
        }
    }

    fn allowed_ports(&self, p: NodeId) -> Option<&[Port]> {
        self.options
            .read_restriction
            .as_ref()
            .map(|restriction| restriction[p.index()].as_slice())
    }

    fn tracked_view<'c>(&self, p: NodeId, comm: &'c [P::Comm]) -> NeighborView<'c, P::Comm> {
        let view = NeighborView::from_snapshot(self.graph, p, comm, true);
        match self.allowed_ports(p) {
            Some(allowed) => view.restricted_to(allowed),
            None => view,
        }
    }

    fn untracked_view<'c>(&self, p: NodeId, comm: &'c [P::Comm]) -> NeighborView<'c, P::Comm> {
        let view = NeighborView::from_snapshot(self.graph, p, comm, false);
        match self.allowed_ports(p) {
            Some(allowed) => view.restricted_to(allowed),
            None => view,
        }
    }

    /// Consumes the simulation and returns its final configuration, stats
    /// and optional trace.
    pub fn into_parts(self) -> (Vec<P::State>, RunStats, Option<Trace>) {
        (self.config, self.stats, self.trace)
    }

    /// Mutable access to the RNG, for fault injection helpers that want to
    /// reuse the simulation's randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{CentralRoundRobin, DistributedRandom, Synchronous};
    use rand::RngCore;
    use selfstab_graph::generators;

    /// Toy silent protocol used to exercise the executor: each process
    /// exposes a value and copies the minimum of its own value and its
    /// neighbors' values. Stabilizes to "everyone holds the global minimum".
    struct MinValue;

    impl Protocol for MinValue {
        type State = u32;
        type Comm = u32;

        fn name(&self) -> &'static str {
            "min-value"
        }

        fn arbitrary_state(&self, _graph: &Graph, p: NodeId, _rng: &mut dyn RngCore) -> u32 {
            (p.index() as u32) * 7 + 3
        }

        fn comm(&self, _p: NodeId, state: &u32) -> u32 {
            *state
        }

        fn is_enabled(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
        ) -> bool {
            (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
        }

        fn activate(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
            _rng: &mut dyn RngCore,
        ) -> Option<u32> {
            let min = (0..graph.degree(p))
                .map(|i| *view.read(Port::new(i)))
                .min()
                .unwrap_or(*state);
            (min < *state).then_some(min)
        }

        fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
            let min = config.iter().min().copied().unwrap_or(0);
            config.iter().all(|&v| v == min)
        }
    }

    #[test]
    fn synchronous_run_reaches_the_minimum() {
        let graph = generators::path(6);
        let mut sim =
            Simulation::new(&graph, MinValue, Synchronous, 1, SimOptions::default());
        let report = sim.run_until_silent(100);
        assert!(report.silent);
        assert!(report.legitimate);
        assert!(sim.config().iter().all(|&v| v == 3));
        // On a path of 6, information travels end to end in at most 5
        // synchronous steps.
        assert!(report.steps <= 6);
        // Under the synchronous daemon every step is a round.
        assert_eq!(report.steps, report.rounds);
    }

    #[test]
    fn round_robin_counts_rounds_correctly() {
        let graph = generators::ring(4);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            CentralRoundRobin::new(),
            2,
            SimOptions::default(),
        );
        sim.run_steps(12);
        // One process per step, 4 processes: 12 steps = 3 rounds.
        assert_eq!(sim.rounds(), 3);
        assert_eq!(sim.steps(), 12);
    }

    #[test]
    fn distributed_random_converges_and_tracks_reads() {
        let graph = generators::ring(8);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            DistributedRandom::new(0.4),
            3,
            SimOptions::default().with_trace(),
        );
        let report = sim.run_until_silent(10_000);
        assert!(report.silent);
        // MinValue reads both neighbors each activation: it is 2-efficient
        // (Δ-efficient), not 1-efficient.
        assert_eq!(sim.stats().measured_efficiency(), 2);
        let trace = sim.trace().expect("trace enabled");
        assert_eq!(trace.measured_efficiency(), 2);
        assert!(trace.len() as u64 == report.total_steps);
    }

    #[test]
    fn with_config_runs_from_explicit_configuration() {
        let graph = generators::path(3);
        let config = vec![5, 9, 1];
        let mut sim = Simulation::with_config(
            &graph,
            MinValue,
            Synchronous,
            config,
            7,
            SimOptions::default(),
        );
        assert!(!sim.is_legitimate());
        let report = sim.run_until_legitimate(50);
        assert!(report.legitimate);
        assert_eq!(sim.config(), &[1, 1, 1]);
    }

    #[test]
    fn read_restriction_is_honored() {
        let graph = generators::path(3);
        // The middle process may only read its port 0; ends read nothing.
        let restriction = vec![vec![], vec![Port::new(0)], vec![]];
        let config = vec![5, 9, 1];
        let mut sim = Simulation::with_config(
            &graph,
            RestrictedMin,
            Synchronous,
            config,
            7,
            SimOptions::default().with_read_restriction(restriction),
        );
        sim.run_steps(10);
        // The middle process can only see process 0 (value 5): it converges
        // to 5, never to 1.
        assert_eq!(sim.config()[1], 5);
        assert_eq!(sim.stats().process(NodeId::new(1)).max_reads_per_activation, 1);
        assert_eq!(sim.stats().process(NodeId::new(0)).max_reads_per_activation, 0);
    }

    /// Variant of [`MinValue`] that tolerates read restrictions by using
    /// `try_read`.
    struct RestrictedMin;

    impl Protocol for RestrictedMin {
        type State = u32;
        type Comm = u32;

        fn name(&self) -> &'static str {
            "restricted-min"
        }

        fn arbitrary_state(&self, _graph: &Graph, p: NodeId, _rng: &mut dyn RngCore) -> u32 {
            p.index() as u32
        }

        fn comm(&self, _p: NodeId, state: &u32) -> u32 {
            *state
        }

        fn is_enabled(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
        ) -> bool {
            (0..graph.degree(p))
                .filter_map(|i| view.try_read(Port::new(i)))
                .any(|v| v < state)
        }

        fn activate(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
            _rng: &mut dyn RngCore,
        ) -> Option<u32> {
            let min = (0..graph.degree(p))
                .filter_map(|i| view.try_read(Port::new(i)))
                .min()
                .copied()
                .unwrap_or(*state);
            (min < *state).then_some(min)
        }

        fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
            let min = config.iter().min().copied().unwrap_or(0);
            config.iter().all(|&v| v == min)
        }
    }

    #[test]
    fn suffix_marker_supports_stability_measurement() {
        let graph = generators::ring(5);
        let mut sim = Simulation::new(
            &graph,
            MinValue,
            Synchronous,
            11,
            SimOptions::default(),
        );
        sim.run_until_silent(100);
        sim.mark_suffix();
        sim.run_steps(5);
        // After stabilization MinValue processes are disabled, but each
        // activation still reads both neighbors to discover that (exactly the
        // "check every neighbor forever" cost the paper wants to avoid), so
        // every process is 2-stable but not 1-stable on the suffix.
        assert_eq!(sim.stats().stable_process_count(2), 5);
        assert_eq!(sim.stats().stable_process_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "one state per process")]
    fn with_config_rejects_wrong_length() {
        let graph = generators::path(3);
        let _ = Simulation::with_config(
            &graph,
            MinValue,
            Synchronous,
            vec![1, 2],
            0,
            SimOptions::default(),
        );
    }
}

//! Order-sensitive 64-bit digests for replay verification.
//!
//! Record/replay equality is checked twice: in memory via `PartialEq` on
//! [`RunStats`](crate::stats::RunStats) and the configuration, and across
//! process boundaries (a trace file replayed by a later invocation) via
//! the digests stored in the trace footer. The digest is FNV-1a over a
//! canonical little-endian byte stream, so it is platform-independent
//! and stable across runs — but it is *not* cryptographic; it detects
//! divergence, not tampering.

/// Incremental FNV-1a hasher over a canonical `u64` stream.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Creates a hasher in the standard FNV-1a offset state.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds one `u64` into the digest as 8 little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `usize` (canonicalized to `u64`).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Folds a boolean as 0 or 1.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u64(u64::from(value));
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_deterministic() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = Fnv64::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn empty_digest_is_the_fnv_offset() {
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}

//! Observability: compact binary trace capture/replay and runtime
//! metrics.
//!
//! The in-memory [`Trace`](crate::trace::Trace) retains every record it
//! sees, which caps it at runs that fit in RAM; this module scales the
//! same per-step observability to million-node, million-step runs:
//!
//! * [`wire`] — the delta-encoded, varint-packed binary format for
//!   [`StepRecord`](crate::trace::StepRecord)s (a few bytes per
//!   activation instead of tens of JSON bytes).
//! * [`sink`] — the [`TraceSink`] trait the executor streams records
//!   into, with [`NullSink`] (zero-cost default), [`MemorySink`],
//!   [`FileSink`] and the matching [`TraceFileReader`].
//! * [`replay()`] — drives a fresh [`Simulation`](crate::Simulation) by a
//!   recorded step stream and verifies every step against the
//!   recording; divergence is a reportable artifact, byte-identical
//!   [`RunStats`](crate::stats::RunStats) and configuration are the
//!   acceptance check.
//! * [`metrics`] — process-global lock-free counters and log-bucketed
//!   duration histograms for the four executor phases, fault
//!   injections and campaign cells.
//! * [`digest`] — the FNV-1a digests stored in trace footers so a
//!   replay in another process can verify without the original run's
//!   memory.
//!
//! Capture is strictly pay-for-what-you-use: with no sink attached (or
//! the [`NullSink`]) and metrics disabled, the executor's hot path is
//! unchanged — zero steady-state allocations, no record construction,
//! one relaxed atomic load per step (enforced by the `zero_alloc`
//! integration test and the `hot_path` bench group).

pub mod digest;
pub mod metrics;
pub mod replay;
pub mod sink;
pub mod wire;

pub use digest::Fnv64;
pub use metrics::{MetricsRegistry, StepPhase};
pub use replay::{
    replay, replay_with, DivergenceKind, ReplayDivergence, ReplayOutcome, ReplayScheduler,
};
pub use sink::{
    FileSink, MemorySink, NullSink, TraceFileReader, TraceFooter, TraceHeader, TraceReadError,
    TraceSink,
};
pub use wire::WireError;

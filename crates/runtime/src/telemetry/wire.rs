//! Compact binary wire format for step records.
//!
//! One [`StepRecord`] is encoded as:
//!
//! ```text
//! step      : zigzag varint delta from the previous record's step
//!             (the first record in a stream encodes its step absolutely)
//! count     : varint, number of activations
//! processes : `count` zigzag varint deltas between consecutive process
//!             ids (first absolute); the executor emits selections in
//!             strictly increasing id order, so gaps are small and
//!             usually one byte
//! executed  : ceil(count / 8) bytes, bit i = activation i executed
//! comm      : ceil(count / 8) bytes, bit i = activation i changed its
//!             communication state
//! reads     : per activation, a varint tag followed by the payload:
//!             tag = 1            — no reads
//!             tag = 2 * m (m>0)  — port bitmap of `m` bytes (used only
//!                                  when the reads are strictly
//!                                  ascending, so decoding preserves
//!                                  the recorded order)
//!             tag = 2 * r + 1    — list of `r` ports as zigzag varint
//!                                  deltas (first absolute), preserving
//!                                  first-read order
//! ```
//!
//! The codec is lossless for *arbitrary* records (steps may go backwards,
//! processes may repeat, reads may arrive in any order): delta encoding
//! uses wrapping zigzag differences, and the bitmap form is only chosen
//! when it is both valid (strictly ascending reads) and smaller than the
//! list form. Encoding a record produced by the executor therefore costs
//! a handful of bytes per activation instead of the tens of bytes of its
//! JSON rendering.

use selfstab_graph::{NodeId, Port};

use crate::trace::{ActivationRecord, StepRecord};

/// Decoding error: the input is truncated or structurally malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended in the middle of a record.
    UnexpectedEof {
        /// Byte offset at which more input was expected.
        offset: usize,
    },
    /// A varint ran past 10 bytes or a field held an impossible value.
    Malformed {
        /// Byte offset of the offending field.
        offset: usize,
        /// What the decoder was reading.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof { offset } => {
                write!(f, "trace stream truncated at byte {offset}")
            }
            WireError::Malformed { offset, what } => {
                write!(f, "malformed {what} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `value` to `buf` as an LEB128 varint (7 bits per byte, low
/// bits first, high bit of each byte marks continuation).
pub fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `input` at `*pos`, advancing the cursor.
pub fn read_varint(input: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let start = *pos;
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = input
            .get(*pos)
            .ok_or(WireError::UnexpectedEof { offset: *pos })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(WireError::Malformed {
                offset: start,
                what: "varint (overflows u64)",
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::Malformed {
                offset: start,
                what: "varint (longer than 10 bytes)",
            });
        }
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the wrapping difference `to - from` as a zigzag varint.
fn put_delta(buf: &mut Vec<u8>, from: u64, to: u64) {
    put_varint(buf, zigzag(to.wrapping_sub(from) as i64));
}

/// Reads a zigzag varint delta and applies it to `from` (wrapping).
fn read_delta(input: &[u8], pos: &mut usize, from: u64) -> Result<u64, WireError> {
    let delta = read_varint(input, pos)?;
    Ok(from.wrapping_add(unzigzag(delta) as u64))
}

/// Number of bytes the zigzag varint of `to - from` occupies.
fn delta_len(from: u64, to: u64) -> usize {
    let v = zigzag(to.wrapping_sub(from) as i64);
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Returns `Some(bitmap_bytes)` when `reads` is strictly ascending, i.e.
/// eligible for the bitmap form (the bitmap's natural decode order is
/// ascending, so only then does it reproduce the recorded order).
fn bitmap_len(reads: &[Port]) -> Option<usize> {
    let mut prev: Option<usize> = None;
    for port in reads {
        if prev.is_some_and(|p| p >= port.index()) {
            return None;
        }
        prev = Some(port.index());
    }
    prev.map(|max| max / 8 + 1)
}

/// Byte cost of the list form of `reads` (excluding the tag).
fn list_len(reads: &[Port]) -> usize {
    let mut prev = 0u64;
    let mut total = 0;
    for port in reads {
        total += delta_len(prev, port.index() as u64);
        prev = port.index() as u64;
    }
    total
}

/// Encodes `record` into `buf`, delta-coding the step index against
/// `prev_step` (`None` for the first record of a stream).
pub fn encode_step(buf: &mut Vec<u8>, prev_step: Option<u64>, record: &StepRecord) {
    match prev_step {
        None => put_varint(buf, record.step),
        Some(prev) => put_delta(buf, prev, record.step),
    }
    put_varint(buf, record.activations.len() as u64);

    let mut prev_process = 0u64;
    for activation in &record.activations {
        put_delta(buf, prev_process, activation.process.index() as u64);
        prev_process = activation.process.index() as u64;
    }

    push_bitset(buf, record.activations.iter().map(|a| a.executed));
    push_bitset(buf, record.activations.iter().map(|a| a.comm_changed));

    for activation in &record.activations {
        encode_reads(buf, &activation.reads);
    }
}

/// Packs a sequence of flags into bytes, 8 flags per byte, LSB first.
fn push_bitset(buf: &mut Vec<u8>, flags: impl Iterator<Item = bool>) {
    let mut byte = 0u8;
    let mut filled = 0u8;
    for flag in flags {
        byte |= u8::from(flag) << filled;
        filled += 1;
        if filled == 8 {
            buf.push(byte);
            byte = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        buf.push(byte);
    }
}

/// Encodes one activation's read set: bitmap when ascending *and*
/// smaller, varint delta list otherwise.
fn encode_reads(buf: &mut Vec<u8>, reads: &[Port]) {
    if reads.is_empty() {
        put_varint(buf, 1);
        return;
    }
    let list = list_len(reads);
    if let Some(bitmap) = bitmap_len(reads) {
        // Compare full costs (tag included) and prefer the bitmap on
        // ties: it decodes without per-port varint work.
        let bitmap_cost = delta_len(0, 2 * bitmap as u64) + bitmap;
        let list_cost = delta_len(0, (2 * reads.len() + 1) as u64) + list;
        if bitmap_cost <= list_cost {
            put_varint(buf, 2 * bitmap as u64);
            let start = buf.len();
            buf.resize(start + bitmap, 0);
            for port in reads {
                buf[start + port.index() / 8] |= 1 << (port.index() % 8);
            }
            return;
        }
    }
    put_varint(buf, (2 * reads.len() + 1) as u64);
    let mut prev = 0u64;
    for port in reads {
        put_delta(buf, prev, port.index() as u64);
        prev = port.index() as u64;
    }
}

/// Decodes one step record from `input` at `*pos`, advancing the cursor.
///
/// `prev_step` must be the step index of the previously decoded record
/// (`None` for the first), mirroring [`encode_step`].
pub fn decode_step(
    input: &[u8],
    pos: &mut usize,
    prev_step: Option<u64>,
) -> Result<StepRecord, WireError> {
    let step = match prev_step {
        None => read_varint(input, pos)?,
        Some(prev) => read_delta(input, pos, prev)?,
    };
    let count_offset = *pos;
    let count = read_varint(input, pos)? as usize;
    // Each activation costs at least 2 bytes (process delta + reads tag)
    // plus its bitset bits; reject counts the input cannot possibly hold
    // before allocating.
    if count > input.len().saturating_sub(*pos) {
        return Err(WireError::Malformed {
            offset: count_offset,
            what: "activation count (exceeds remaining input)",
        });
    }

    let mut activations = Vec::with_capacity(count);
    let mut prev_process = 0u64;
    for _ in 0..count {
        let offset = *pos;
        let id = read_delta(input, pos, prev_process)?;
        prev_process = id;
        if id > NodeId::MAX_INDEX as u64 {
            return Err(WireError::Malformed {
                offset,
                what: "process id (exceeds NodeId::MAX_INDEX)",
            });
        }
        activations.push(ActivationRecord {
            process: NodeId::new(id as usize),
            executed: false,
            reads: Vec::new(), // lint: allow(hot-alloc) — decode path builds record-owned vecs
            comm_changed: false,
        });
    }

    read_bitset(input, pos, count, |i, flag| activations[i].executed = flag)?;
    read_bitset(input, pos, count, |i, flag| {
        activations[i].comm_changed = flag;
    })?;

    for activation in &mut activations {
        activation.reads = decode_reads(input, pos)?;
    }

    Ok(StepRecord { step, activations })
}

/// Reads a `count`-bit bitset written by [`push_bitset`].
fn read_bitset(
    input: &[u8],
    pos: &mut usize,
    count: usize,
    mut apply: impl FnMut(usize, bool),
) -> Result<(), WireError> {
    let bytes = count.div_ceil(8);
    let slice = input
        .get(*pos..*pos + bytes)
        .ok_or(WireError::UnexpectedEof {
            offset: input.len(),
        })?;
    for i in 0..count {
        apply(i, slice[i / 8] >> (i % 8) & 1 == 1);
    }
    *pos += bytes;
    Ok(())
}

/// Decodes one activation's read set written by `encode_reads`.
fn decode_reads(input: &[u8], pos: &mut usize) -> Result<Vec<Port>, WireError> {
    let tag_offset = *pos;
    let tag = read_varint(input, pos)?;
    if tag == 0 {
        return Err(WireError::Malformed {
            offset: tag_offset,
            what: "reads tag (reserved value 0)",
        });
    }
    if tag == 1 {
        return Ok(Vec::new()); // lint: allow(hot-alloc) — decode path; empty read set
    }
    if tag % 2 == 0 {
        // Bitmap form: `tag / 2` bytes, set bits are the port indices.
        let bytes = (tag / 2) as usize;
        let slice = input
            .get(*pos..*pos + bytes)
            .ok_or(WireError::UnexpectedEof {
                offset: input.len(),
            })?;
        let mut reads = Vec::new(); // lint: allow(hot-alloc) — decode path builds the record-owned read set
        for (i, &byte) in slice.iter().enumerate() {
            let mut bits = byte;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                reads.push(Port::new(i * 8 + bit));
                bits &= bits - 1;
            }
        }
        *pos += bytes;
        Ok(reads)
    } else {
        // List form: `(tag - 1) / 2` zigzag varint deltas.
        let count_offset = tag_offset;
        let count = ((tag - 1) / 2) as usize;
        if count > input.len().saturating_sub(*pos) {
            return Err(WireError::Malformed {
                offset: count_offset,
                what: "reads count (exceeds remaining input)",
            });
        }
        let mut reads = Vec::with_capacity(count);
        let mut prev = 0u64;
        for _ in 0..count {
            let offset = *pos;
            let port = read_delta(input, pos, prev)?;
            prev = port;
            if port > usize::MAX as u64 {
                return Err(WireError::Malformed {
                    offset,
                    what: "port index (exceeds usize)",
                });
            }
            reads.push(Port::new(port as usize));
        }
        Ok(reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(value));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert!(matches!(
            read_varint(&[0x80], &mut pos),
            Err(WireError::UnexpectedEof { .. })
        ));
        // 10 continuation bytes followed by a value overflowing bit 63.
        let overlong = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&overlong, &mut pos),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    fn record(step: u64, entries: &[(usize, bool, &[usize], bool)]) -> StepRecord {
        StepRecord {
            step,
            activations: entries
                .iter()
                .map(|&(p, executed, reads, comm_changed)| ActivationRecord {
                    process: NodeId::new(p),
                    executed,
                    reads: reads.iter().map(|&r| Port::new(r)).collect(),
                    comm_changed,
                })
                .collect(),
        }
    }

    fn round_trip(records: &[StepRecord]) {
        let mut buf = Vec::new();
        let mut prev = None;
        for r in records {
            encode_step(&mut buf, prev, r);
            prev = Some(r.step);
        }
        let mut pos = 0;
        let mut prev = None;
        for r in records {
            let decoded = decode_step(&buf, &mut pos, prev).expect("decodes");
            assert_eq!(&decoded, r);
            prev = Some(decoded.step);
        }
        assert_eq!(pos, buf.len(), "decoder consumed the whole stream");
    }

    #[test]
    fn step_round_trip_covers_both_read_forms() {
        round_trip(&[
            record(0, &[]),
            record(1, &[(0, true, &[], false)]),
            // Ascending wide read set: dense enough for the bitmap form.
            record(2, &[(3, true, &[0, 1, 2, 3, 4, 5, 6, 7, 9, 10, 11], true)]),
            // Out-of-order reads must stay in first-read order.
            record(3, &[(7, false, &[5, 2, 9, 0], false)]),
            // Sparse ascending reads: list form wins over a wide bitmap.
            record(4, &[(2, true, &[1, 900], true)]),
        ]);
    }

    #[test]
    fn step_round_trip_u32_boundary_ids_and_step_jumps() {
        round_trip(&[
            record(u64::MAX - 1, &[(NodeId::MAX_INDEX, true, &[0], true)]),
            // Step index goes *backwards*; zigzag wrapping handles it.
            record(
                3,
                &[
                    (0, false, &[], false),
                    (NodeId::MAX_INDEX, true, &[1], false),
                ],
            ),
            record(u64::MAX, &[]),
        ]);
    }

    #[test]
    fn executor_shaped_records_cost_a_few_bytes_per_activation() {
        // 64 consecutive processes, 1 read each: the shape a silent
        // synchronous step produces under a 1-efficient protocol.
        let entries: Vec<(usize, bool, Vec<usize>, bool)> =
            (0..64).map(|p| (p, false, vec![0usize], false)).collect();
        let borrowed: Vec<(usize, bool, &[usize], bool)> = entries
            .iter()
            .map(|(p, e, r, c)| (*p, *e, r.as_slice(), *c))
            .collect();
        let rec = record(17, &borrowed);
        let mut buf = Vec::new();
        encode_step(&mut buf, Some(16), &rec);
        assert!(
            buf.len() <= 4 * rec.activations.len(),
            "expected a few bytes per activation, got {} bytes for {}",
            buf.len(),
            rec.activations.len()
        );
    }

    #[test]
    fn decode_rejects_implausible_activation_count() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 0); // step
        put_varint(&mut buf, u32::MAX as u64); // absurd count, no payload
        let mut pos = 0;
        assert!(matches!(
            decode_step(&buf, &mut pos, None),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn decode_rejects_out_of_range_process_id() {
        let rec = record(0, &[(0, true, &[], false)]);
        let mut buf = Vec::new();
        encode_step(&mut buf, None, &rec);
        // Patch the process delta to encode u32::MAX + 1.
        let mut patched = Vec::new();
        put_varint(&mut patched, 0); // step
        put_varint(&mut patched, 1); // count
        put_varint(&mut patched, zigzag((NodeId::MAX_INDEX as i64) + 1));
        patched.push(0); // executed bitset
        patched.push(0); // comm bitset
        put_varint(&mut patched, 1); // empty reads
        let mut pos = 0;
        assert!(matches!(
            decode_step(&patched, &mut pos, None),
            Err(WireError::Malformed { .. })
        ));
    }
}

//! Lock-free runtime metrics: monotonic counters and log-bucketed
//! duration histograms.
//!
//! The registry is a process-global singleton behind an enable flag.
//! When disabled (the default) the executor's only cost is one relaxed
//! atomic load per step, so the zero-allocation hot path is untouched;
//! when enabled, the executor times its four phases and folds the
//! per-shard work-item counts into the registry at the phase-D merge
//! barrier — the same point where [`StatsShard`](crate::stats) deltas
//! are folded into [`RunStats`](crate::stats::RunStats), so metrics
//! inherit the executor's determinism barrier instead of adding a new
//! synchronization point. All cells are atomics with relaxed ordering:
//! metrics are monotonic observational counters, not synchronization.
//!
//! Histograms bucket durations by `floor(log2(ns)) + 1` (bucket 0 holds
//! exact zeros), which keeps recording branch-free and wait-free;
//! quantiles are therefore *upper bounds* at power-of-two resolution —
//! plenty for p50/p95/p99 phase summaries, and campaign-cell summaries
//! additionally keep exact samples on the analysis side.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// The four phases of one executor step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPhase {
    /// Phase A: re-evaluating guards over the dirty queues.
    GuardRefresh = 0,
    /// Phase B: the scheduler's (sequential) selection.
    Selection = 1,
    /// Phase C: activating the selected processes (possibly sharded).
    Activation = 2,
    /// Phase D: merging staged writes and deltas in shard order.
    Merge = 3,
}

impl StepPhase {
    /// All phases, in execution order.
    pub const ALL: [StepPhase; 4] = [
        StepPhase::GuardRefresh,
        StepPhase::Selection,
        StepPhase::Activation,
        StepPhase::Merge,
    ];

    /// Stable snake_case name, used as the JSON key in reports.
    pub fn name(self) -> &'static str {
        match self {
            StepPhase::GuardRefresh => "guard_refresh",
            StepPhase::Selection => "selection",
            StepPhase::Activation => "activation",
            StepPhase::Merge => "merge",
        }
    }
}

/// Number of histogram buckets: bucket `i >= 1` holds durations in
/// `[2^(i-1), 2^i)` nanoseconds; bucket 0 holds exact zeros.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Wait-free log-bucketed duration histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one duration.
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one duration given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic cell
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic cell
        self.total_ns.fetch_add(ns, Ordering::Relaxed); // ordering: independent monotonic cell
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: observational snapshot; may lag writers
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed) // ordering: observational snapshot; may lag writers
    }

    /// Upper bound (power-of-two resolution) of the `q`-quantile of the
    /// recorded durations, in nanoseconds; 0 when nothing was recorded.
    ///
    /// `q` is clamped to `[0, 1]`.
    pub fn quantile_upper_bound_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed); // ordering: snapshot scan; buckets are independent
            if cumulative >= rank {
                return if i == 0 {
                    0
                } else {
                    (1u64 << i).wrapping_sub(1)
                };
            }
        }
        u64::MAX
    }
}

/// Counters and timing for one executor phase.
#[derive(Debug, Default)]
pub struct PhaseMetrics {
    invocations: AtomicU64,
    items: AtomicU64,
    histogram: Histogram,
}

impl PhaseMetrics {
    /// Records one invocation that processed `items` work items in
    /// `elapsed` wall time.
    pub fn record(&self, items: u64, elapsed: Duration) {
        self.invocations.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic cell
        self.items.fetch_add(items, Ordering::Relaxed); // ordering: independent monotonic cell
        self.histogram.record(elapsed);
    }

    /// Number of recorded invocations.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed) // ordering: observational snapshot; may lag writers
    }

    /// Total work items processed (phase-specific unit: dirty processes
    /// drained, processes selected, activations run, updates merged).
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed) // ordering: observational snapshot; may lag writers
    }

    /// The duration histogram of this phase.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }
}

/// Process-global metrics: executor phases, fault injections, campaign
/// cells.
///
/// All methods are `&self` and wait-free; one registry instance is
/// shared by every simulation in the process (see [`global`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    phases: [PhaseMetrics; 4],
    fault_injections: AtomicU64,
    fault_victims: AtomicU64,
    fault_histogram: Histogram,
    campaign_cells: Histogram,
}

impl MetricsRegistry {
    /// The metrics of one executor phase.
    pub fn phase(&self, phase: StepPhase) -> &PhaseMetrics {
        &self.phases[phase as usize]
    }

    /// Records one fault-injection event that corrupted `victims`
    /// processes in `elapsed` wall time.
    pub fn record_fault_injection(&self, victims: u64, elapsed: Duration) {
        self.fault_injections.fetch_add(1, Ordering::Relaxed); // ordering: independent monotonic cell
        self.fault_victims.fetch_add(victims, Ordering::Relaxed); // ordering: independent monotonic cell
        self.fault_histogram.record(elapsed);
    }

    /// Number of recorded fault-injection events.
    pub fn fault_injections(&self) -> u64 {
        self.fault_injections.load(Ordering::Relaxed) // ordering: observational snapshot; may lag writers
    }

    /// Total processes corrupted across all recorded injections.
    pub fn fault_victims(&self) -> u64 {
        self.fault_victims.load(Ordering::Relaxed) // ordering: observational snapshot; may lag writers
    }

    /// Duration histogram of fault injections.
    pub fn fault_histogram(&self) -> &Histogram {
        &self.fault_histogram
    }

    /// Records one completed campaign cell.
    pub fn record_campaign_cell(&self, elapsed: Duration) {
        self.campaign_cells.record(elapsed);
    }

    /// Duration histogram of campaign cells.
    pub fn campaign_cells(&self) -> &Histogram {
        &self.campaign_cells
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global registry. Always readable (reports read it after
/// a run); writers should go through [`active`] so disabled runs pay
/// nothing.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::default)
}

/// Turns metrics collection on or off process-wide.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed); // ordering: enable flag guards no data
}

/// Whether metrics collection is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) // ordering: enable flag guards no data
}

/// The registry when collection is enabled, `None` otherwise — the one
/// relaxed load instrumented code performs per step.
pub fn active() -> Option<&'static MetricsRegistry> {
    if enabled() {
        Some(global())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile_upper_bound_ns(0.5), 0, "empty histogram");
        for ns in [1u64, 2, 3, 100, 1000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.total_ns(), 1106);
        // p50: rank 3 of [1 | 2,3 | 100 | 1000] -> bucket [2,4) -> 3.
        assert_eq!(h.quantile_upper_bound_ns(0.5), 3);
        // p99: rank 5 -> bucket [512, 1024) -> 1023.
        assert_eq!(h.quantile_upper_bound_ns(0.99), 1023);
        // Every recorded value is <= its quantile upper bound.
        assert!(h.quantile_upper_bound_ns(1.0) >= 1000);
    }

    #[test]
    fn phase_metrics_accumulate() {
        let m = PhaseMetrics::default();
        m.record(10, Duration::from_nanos(500));
        m.record(7, Duration::from_nanos(300));
        assert_eq!(m.invocations(), 2);
        assert_eq!(m.items(), 17);
        assert_eq!(m.histogram().count(), 2);
    }

    #[test]
    fn registry_phase_indexing_matches_enum() {
        let r = MetricsRegistry::default();
        for phase in StepPhase::ALL {
            assert_eq!(r.phase(phase).invocations(), 0);
        }
        r.phase(StepPhase::Merge).record(1, Duration::ZERO);
        assert_eq!(r.phase(StepPhase::Merge).invocations(), 1);
        assert_eq!(r.phase(StepPhase::Activation).invocations(), 0);
    }

    #[test]
    fn fault_and_campaign_counters_accumulate() {
        let r = MetricsRegistry::default();
        r.record_fault_injection(3, Duration::from_nanos(100));
        r.record_fault_injection(5, Duration::from_nanos(200));
        assert_eq!(r.fault_injections(), 2);
        assert_eq!(r.fault_victims(), 8);
        assert_eq!(r.fault_histogram().count(), 2);
        r.record_campaign_cell(Duration::from_millis(1));
        assert_eq!(r.campaign_cells().count(), 1);
    }

    // The global enable flag is shared process-wide, so this test only
    // asserts the accessor relationship, not a particular state (other
    // tests in the binary may toggle it concurrently).
    #[test]
    fn active_follows_the_enable_flag() {
        if enabled() {
            assert!(active().is_some());
        } else {
            assert!(active().is_none());
        }
        // global() is always available for report readers.
        let _ = global().phase(StepPhase::Selection).invocations();
    }
}

//! Trace sinks: where captured step records go.
//!
//! The executor hands every step's [`StepRecord`] to an attached
//! [`TraceSink`]. Sinks own the wire-format encoder state (the previous
//! step index for delta coding), so the executor stays oblivious to the
//! encoding. Three implementations cover the spectrum:
//!
//! * [`NullSink`] — reports [`TraceSink::is_recording`]` == false`, so
//!   the executor skips record construction entirely; attaching it is
//!   byte-for-byte equivalent to attaching nothing (the zero-allocation
//!   and sharded hot paths are untouched).
//! * [`MemorySink`] — encodes into an in-memory buffer; the unit-test
//!   and proptest workhorse.
//! * [`FileSink`] — encodes through a buffered writer into the trace
//!   file container (header, tagged step stream, digest footer), built
//!   for multi-million-step runs that an in-memory
//!   [`Trace`](crate::trace::Trace) cannot survive.
//!
//! [`TraceFileReader`] reads the container back, decoding records
//! lazily so replay memory stays proportional to the (compact) file,
//! not to the expanded record stream.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::trace::StepRecord;

use super::wire::{self, WireError};

/// Magic bytes opening a trace file: "SSTB" (Self-Stabilization Trace,
/// Binary).
pub const TRACE_MAGIC: [u8; 4] = *b"SSTB";

/// Current trace container version.
pub const TRACE_VERSION: u8 = 1;

/// Tag byte preceding each encoded step in a trace file.
const TAG_STEP: u8 = 0x01;

/// Tag byte closing the step stream; the footer follows.
const TAG_END: u8 = 0x00;

/// Identity of a recorded run, stored in the trace file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Number of processes in the recorded system.
    pub node_count: u64,
    /// Seed the recorded `Simulation` was constructed with.
    pub seed: u64,
    /// Free-form recorder metadata (workload label, daemon, fault plan,
    /// ...). Replay drivers parse this to reconstruct the run; the
    /// container itself does not interpret it.
    pub meta: String,
}

/// Verification digests written after the last step.
///
/// A replayer recomputes both digests from its own run and compares;
/// any mismatch is a divergence even if the step stream matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFooter {
    /// Number of steps recorded.
    pub steps: u64,
    /// [`RunStats::digest`](crate::stats::RunStats::digest) of the
    /// recorded run.
    pub stats_digest: u64,
    /// Digest of the final configuration (protocol-specific; see the
    /// recorder that produced the file).
    pub config_digest: u64,
}

/// Destination for captured step records.
///
/// # Contract
///
/// * The executor calls [`record_step`](TraceSink::record_step) once
///   per step, in step order, only when
///   [`is_recording`](TraceSink::is_recording) returned `true` at the
///   start of that step.
/// * `is_recording` must be cheap and stable for the duration of a
///   step; the executor checks it once per step to decide whether to
///   build the record at all.
/// * [`finish`](TraceSink::finish) is called at most once, by the owner
///   that detached the sink, with the run's verification digests. I/O
///   errors encountered while recording may be deferred and reported
///   here.
pub trait TraceSink: Send {
    /// Whether the executor should build and deliver step records.
    fn is_recording(&self) -> bool {
        true
    }

    /// Consumes one step record.
    fn record_step(&mut self, record: &StepRecord);

    /// Seals the stream with the run's verification digests.
    fn finish(&mut self, footer: &TraceFooter) -> io::Result<()> {
        let _ = footer;
        Ok(())
    }
}

/// The zero-cost default sink: records nothing and tells the executor
/// so, keeping the hot path identical to running with no sink at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_recording(&self) -> bool {
        false
    }

    fn record_step(&mut self, _record: &StepRecord) {}
}

/// Sink encoding the step stream into an in-memory buffer.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    bytes: Vec<u8>,
    prev_step: Option<u64>,
    steps: u64,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The encoded step stream (no container header or footer).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of steps recorded.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Consumes the sink, returning the encoded stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Decodes the full stream back into records.
    pub fn decode_all(&self) -> Result<Vec<StepRecord>, WireError> {
        let mut records = Vec::new();
        let mut pos = 0;
        let mut prev = None;
        while pos < self.bytes.len() {
            let record = wire::decode_step(&self.bytes, &mut pos, prev)?;
            prev = Some(record.step);
            records.push(record);
        }
        Ok(records)
    }
}

impl TraceSink for MemorySink {
    fn record_step(&mut self, record: &StepRecord) {
        wire::encode_step(&mut self.bytes, self.prev_step, record);
        self.prev_step = Some(record.step);
        self.steps += 1;
    }
}

/// Sink streaming the trace file container through a buffered writer.
///
/// I/O errors during recording are stored and reported by
/// [`finish`](TraceSink::finish) (the executor's step path is
/// infallible), which also writes the end tag and footer and flushes.
#[derive(Debug)]
pub struct FileSink {
    writer: BufWriter<File>,
    scratch: Vec<u8>,
    prev_step: Option<u64>,
    steps: u64,
    deferred: Option<io::Error>,
    finished: bool,
}

impl FileSink {
    /// Creates `path` (truncating any existing file) and writes the
    /// container header.
    pub fn create(path: &Path, header: &TraceHeader) -> io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(&TRACE_MAGIC)?;
        writer.write_all(&[TRACE_VERSION])?;
        let mut buf = Vec::new();
        wire::put_varint(&mut buf, header.node_count);
        wire::put_varint(&mut buf, header.seed);
        wire::put_varint(&mut buf, header.meta.len() as u64);
        buf.extend_from_slice(header.meta.as_bytes());
        writer.write_all(&buf)?;
        Ok(FileSink {
            writer,
            scratch: Vec::new(),
            prev_step: None,
            steps: 0,
            deferred: None,
            finished: false,
        })
    }

    /// Number of steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl TraceSink for FileSink {
    fn record_step(&mut self, record: &StepRecord) {
        if self.deferred.is_some() {
            return;
        }
        self.scratch.clear();
        self.scratch.push(TAG_STEP);
        wire::encode_step(&mut self.scratch, self.prev_step, record);
        self.prev_step = Some(record.step);
        self.steps += 1;
        if let Err(err) = self.writer.write_all(&self.scratch) {
            self.deferred = Some(err);
        }
    }

    fn finish(&mut self, footer: &TraceFooter) -> io::Result<()> {
        if let Some(err) = self.deferred.take() {
            return Err(err);
        }
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        self.scratch.clear();
        self.scratch.push(TAG_END);
        wire::put_varint(&mut self.scratch, footer.steps);
        self.scratch
            .extend_from_slice(&footer.stats_digest.to_le_bytes());
        self.scratch
            .extend_from_slice(&footer.config_digest.to_le_bytes());
        self.writer.write_all(&self.scratch)?;
        self.writer.flush()
    }
}

/// Error reading a trace file: I/O or a malformed byte stream.
#[derive(Debug)]
pub enum TraceReadError {
    /// The underlying file could not be read.
    Io(io::Error),
    /// The byte stream violates the container or wire format.
    Wire(WireError),
    /// The file is not a trace container (bad magic) or an unsupported
    /// version.
    Container(String),
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(err) => write!(f, "trace file i/o error: {err}"),
            TraceReadError::Wire(err) => write!(f, "trace file decode error: {err}"),
            TraceReadError::Container(reason) => write!(f, "not a trace file: {reason}"),
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<io::Error> for TraceReadError {
    fn from(err: io::Error) -> Self {
        TraceReadError::Io(err)
    }
}

impl From<WireError> for TraceReadError {
    fn from(err: WireError) -> Self {
        TraceReadError::Wire(err)
    }
}

/// Lazy reader over a trace file written by [`FileSink`].
///
/// Holds the raw (compact) bytes and decodes one record per
/// [`next_step`](TraceFileReader::next_step) call; the footer becomes
/// available once the end tag has been consumed.
#[derive(Debug)]
pub struct TraceFileReader {
    bytes: Vec<u8>,
    pos: usize,
    header: TraceHeader,
    prev_step: Option<u64>,
    steps_read: u64,
    footer: Option<TraceFooter>,
}

impl TraceFileReader {
    /// Opens and validates `path`, reading the header eagerly.
    pub fn open(path: &Path) -> Result<Self, TraceReadError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 5 || bytes[..4] != TRACE_MAGIC {
            return Err(TraceReadError::Container(format!(
                "{} lacks the SSTB magic",
                path.display()
            )));
        }
        if bytes[4] != TRACE_VERSION {
            return Err(TraceReadError::Container(format!(
                "unsupported trace version {} (supported: {TRACE_VERSION})",
                bytes[4]
            )));
        }
        let mut pos = 5;
        let node_count = wire::read_varint(&bytes, &mut pos)?;
        let seed = wire::read_varint(&bytes, &mut pos)?;
        let meta_len = wire::read_varint(&bytes, &mut pos)? as usize;
        let meta_bytes = bytes
            .get(pos..pos + meta_len)
            .ok_or(WireError::UnexpectedEof {
                offset: bytes.len(),
            })?;
        let meta = String::from_utf8(meta_bytes.to_vec())
            .map_err(|_| TraceReadError::Container("header metadata is not UTF-8".to_string()))?;
        pos += meta_len;
        Ok(TraceFileReader {
            bytes,
            pos,
            header: TraceHeader {
                node_count,
                seed,
                meta,
            },
            prev_step: None,
            steps_read: 0,
            footer: None,
        })
    }

    /// The recorded run's identity.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Total size of the container in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Number of step records decoded so far.
    pub fn steps_read(&self) -> u64 {
        self.steps_read
    }

    /// The verification footer; `Some` only after the whole stream has
    /// been consumed by [`next_step`](TraceFileReader::next_step).
    pub fn footer(&self) -> Option<&TraceFooter> {
        self.footer.as_ref()
    }

    /// Decodes the next step record, or `Ok(None)` once the end tag and
    /// footer have been reached.
    pub fn next_step(&mut self) -> Result<Option<StepRecord>, TraceReadError> {
        if self.footer.is_some() {
            return Ok(None);
        }
        let tag_offset = self.pos;
        let &tag = self
            .bytes
            .get(self.pos)
            .ok_or(WireError::UnexpectedEof { offset: tag_offset })?;
        self.pos += 1;
        match tag {
            TAG_STEP => {
                let record = wire::decode_step(&self.bytes, &mut self.pos, self.prev_step)?;
                self.prev_step = Some(record.step);
                self.steps_read += 1;
                Ok(Some(record))
            }
            TAG_END => {
                let steps = wire::read_varint(&self.bytes, &mut self.pos)?;
                let stats_digest = self.read_u64_le()?;
                let config_digest = self.read_u64_le()?;
                if steps != self.steps_read {
                    return Err(TraceReadError::Container(format!(
                        "footer claims {steps} steps but the stream held {}",
                        self.steps_read
                    )));
                }
                self.footer = Some(TraceFooter {
                    steps,
                    stats_digest,
                    config_digest,
                });
                Ok(None)
            }
            other => Err(TraceReadError::Container(format!(
                "unknown record tag 0x{other:02x} at byte {tag_offset}"
            ))),
        }
    }

    /// Decodes every remaining record eagerly.
    pub fn read_to_end(&mut self) -> Result<Vec<StepRecord>, TraceReadError> {
        let mut records = Vec::new();
        while let Some(record) = self.next_step()? {
            records.push(record);
        }
        Ok(records)
    }

    fn read_u64_le(&mut self) -> Result<u64, TraceReadError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or(WireError::UnexpectedEof {
                offset: self.bytes.len(),
            })?;
        self.pos += 8;
        Ok(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::{NodeId, Port};

    fn sample_records() -> Vec<StepRecord> {
        use crate::trace::ActivationRecord;
        (0..5)
            .map(|step| StepRecord {
                step,
                activations: (0..=(step as usize % 3))
                    .map(|p| ActivationRecord {
                        process: NodeId::new(p * 2),
                        executed: p % 2 == 0,
                        reads: (0..p).map(Port::new).collect(),
                        comm_changed: step % 2 == 1,
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn null_sink_reports_not_recording() {
        let sink = NullSink;
        assert!(!sink.is_recording());
    }

    #[test]
    fn memory_sink_round_trips() {
        let records = sample_records();
        let mut sink = MemorySink::new();
        for r in &records {
            sink.record_step(r);
        }
        assert_eq!(sink.steps(), records.len() as u64);
        assert_eq!(sink.decode_all().expect("decodes"), records);
    }

    #[test]
    fn file_sink_round_trips_with_header_and_footer() {
        let path =
            std::env::temp_dir().join(format!("sstb_sink_test_{}.trace", std::process::id()));
        let header = TraceHeader {
            node_count: 6,
            seed: 42,
            meta: "workload=ring(6);daemon=test".to_string(),
        };
        let records = sample_records();
        let mut sink = FileSink::create(&path, &header).expect("creates");
        for r in &records {
            sink.record_step(r);
        }
        let footer = TraceFooter {
            steps: records.len() as u64,
            stats_digest: 0xdead_beef,
            config_digest: 0xfeed_face,
        };
        sink.finish(&footer).expect("finishes");

        let mut reader = TraceFileReader::open(&path).expect("opens");
        assert_eq!(reader.header(), &header);
        assert!(reader.footer().is_none(), "footer only after the stream");
        let decoded = reader.read_to_end().expect("decodes");
        assert_eq!(decoded, records);
        assert_eq!(reader.footer(), Some(&footer));
        assert!(matches!(reader.next_step(), Ok(None)), "reader is fused");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_non_trace_files() {
        let path =
            std::env::temp_dir().join(format!("sstb_sink_badmagic_{}.trace", std::process::id()));
        std::fs::write(&path, b"not a trace").expect("writes");
        assert!(matches!(
            TraceFileReader::open(&path),
            Err(TraceReadError::Container(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}

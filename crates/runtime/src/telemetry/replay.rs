//! Trace replay: drive a fresh [`Simulation`] by a recorded step stream
//! and verify that the execution reproduces step by step.
//!
//! # Determinism guarantee
//!
//! A simulation's observable execution is a pure function of `(graph,
//! protocol, construction seed, options, scheduler decisions, external
//! state writes)`. A trace records the scheduler decisions (the selected
//! set of every step); [`replay_with`] re-runs the simulation with a
//! [`ReplayScheduler`] that emits exactly those selections, and the
//! caller-supplied hook reproduces external writes (fault injections)
//! keyed on the step counter. Everything else — activation RNG streams
//! (derived from `(seed, step, process)`), guard evaluation, the merge
//! order — is deterministic, so the replayed run must match the
//! recording in every observable: executed sets, comm-change flags,
//! [`RunStats`], final configuration. Any mismatch is reported as a
//! [`ReplayDivergence`] naming the first step that differed — a
//! shareable anomaly artifact rather than a silent wrong answer.

use selfstab_graph::{Graph, NodeId};

use crate::executor::{SimOptions, Simulation};
use crate::protocol::Protocol;
use crate::scheduler::{Scheduler, SchedulerContext};
use crate::stats::RunStats;
use crate::trace::StepRecord;

/// Scheduler that replays recorded selections staged one step at a time.
///
/// The replay driver stages each record's selection before stepping; a
/// step without a staged selection panics (it would mean the driver and
/// the executor disagree about how many steps remain).
#[derive(Debug, Default)]
pub struct ReplayScheduler {
    staged: Vec<NodeId>,
}

impl ReplayScheduler {
    /// Creates a scheduler with no staged selection.
    pub fn new() -> Self {
        ReplayScheduler::default()
    }

    /// Stages the selection for the next step.
    pub fn stage(&mut self, selection: &[NodeId]) {
        self.staged.clear();
        self.staged.extend_from_slice(selection);
    }
}

impl Scheduler for ReplayScheduler {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn select(
        &mut self,
        _ctx: &SchedulerContext<'_>,
        _rng: &mut dyn rand::RngCore,
        out: &mut Vec<NodeId>,
    ) {
        assert!(
            !self.staged.is_empty(),
            "ReplayScheduler stepped without a staged selection \
             (drive it through telemetry::replay, not run_until_silent)"
        );
        out.append(&mut self.staged);
    }
}

/// How a replayed step differed from its recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The record's step index does not match the simulation's counter.
    StepIndex,
    /// The recorded selection violates the scheduler contract (empty,
    /// unsorted, duplicated, or out of range) — a corrupt trace.
    Selection,
    /// The set of processes that executed differs.
    Executed,
    /// The step's comm-changed flag differs.
    CommChanged,
    /// The full step record differs (deep comparison, only performed
    /// when the replay simulation records its own trace).
    TraceRecord,
}

impl DivergenceKind {
    /// Stable snake_case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DivergenceKind::StepIndex => "step_index",
            DivergenceKind::Selection => "selection",
            DivergenceKind::Executed => "executed",
            DivergenceKind::CommChanged => "comm_changed",
            DivergenceKind::TraceRecord => "trace_record",
        }
    }
}

/// First observed mismatch between a recording and its replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Step index (the recording's) at which the mismatch was observed.
    pub step: u64,
    /// What differed.
    pub kind: DivergenceKind,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl std::fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at step {} ({}): {}",
            self.step,
            self.kind.name(),
            self.detail
        )
    }
}

impl std::error::Error for ReplayDivergence {}

/// Result of a successful replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome<State> {
    /// The replayed run's aggregated statistics.
    pub stats: RunStats,
    /// The replayed run's final configuration.
    pub config: Vec<State>,
    /// Number of steps replayed.
    pub steps: u64,
}

/// Replays `records` through a fresh simulation, with a `hook` invoked
/// before every step (and once more after the last) to reproduce
/// external state writes — fault injections keyed on
/// [`Simulation::steps`].
///
/// `graph`, `protocol`, `seed` and `options` must match the recorded
/// run's construction, and the trace must have been recorded from the
/// run's first step (the first record must carry step index 0). Each
/// step is verified against its record (executed set and comm-changed
/// flag; additionally the full record when `options.record_trace` is
/// set); the first mismatch aborts the replay with a
/// [`ReplayDivergence`]. The final-state checks ([`RunStats`] equality
/// or digest, configuration equality or digest) are the caller's: this
/// driver returns both in the [`ReplayOutcome`].
pub fn replay_with<'g, P, I, F>(
    graph: &'g Graph,
    protocol: P,
    seed: u64,
    options: SimOptions,
    records: I,
    mut hook: F,
) -> Result<ReplayOutcome<P::State>, Box<ReplayDivergence>>
where
    P: Protocol,
    I: IntoIterator<Item = StepRecord>,
    F: FnMut(&mut Simulation<'g, P, ReplayScheduler>),
{
    let mut sim = Simulation::new(graph, protocol, ReplayScheduler::new(), seed, options);
    let n = graph.node_count();
    for record in records {
        if record.step != sim.steps() {
            return Err(Box::new(ReplayDivergence {
                step: record.step,
                kind: DivergenceKind::StepIndex,
                detail: format!(
                    "record carries step {} but the simulation is at step {}",
                    record.step,
                    sim.steps()
                ),
            }));
        }
        if let Some(detail) = selection_contract_violation(&record, n) {
            return Err(Box::new(ReplayDivergence {
                step: record.step,
                kind: DivergenceKind::Selection,
                detail,
            }));
        }

        hook(&mut sim);

        let selection: Vec<NodeId> = record.activations.iter().map(|a| a.process).collect();
        sim.scheduler_mut().stage(&selection);
        let outcome = sim.step();

        let recorded_executed = record
            .activations
            .iter()
            .filter(|a| a.executed)
            .map(|a| a.process);
        if !recorded_executed
            .clone()
            .eq(sim.last_executed().iter().copied())
        {
            return Err(Box::new(ReplayDivergence {
                step: record.step,
                kind: DivergenceKind::Executed,
                detail: format!(
                    "recorded executed set {:?} but the replay executed {:?}",
                    recorded_executed.collect::<Vec<_>>(),
                    sim.last_executed()
                ),
            }));
        }
        if outcome.comm_changed != record.any_comm_changed() {
            return Err(Box::new(ReplayDivergence {
                step: record.step,
                kind: DivergenceKind::CommChanged,
                detail: format!(
                    "recorded comm_changed={} but the replay observed {}",
                    record.any_comm_changed(),
                    outcome.comm_changed
                ),
            }));
        }
        if let Some(trace) = sim.trace() {
            let replayed = trace.steps().last().expect("trace holds the step just run");
            if *replayed != record {
                return Err(Box::new(ReplayDivergence {
                    step: record.step,
                    kind: DivergenceKind::TraceRecord,
                    detail: format!(
                        "recorded step record {record:?} but the replay produced {replayed:?}"
                    ),
                }));
            }
        }
    }
    // One trailing hook call: a recording may end with an external write
    // (e.g. a fault injected right before the run went silent or hit its
    // step budget) that is part of the final configuration.
    hook(&mut sim);

    let steps = sim.steps();
    let (config, stats, _) = sim.into_parts();
    Ok(ReplayOutcome {
        stats,
        config,
        steps,
    })
}

/// [`replay_with`] for recordings without external state writes.
pub fn replay<P, I>(
    graph: &Graph,
    protocol: P,
    seed: u64,
    options: SimOptions,
    records: I,
) -> Result<ReplayOutcome<P::State>, Box<ReplayDivergence>>
where
    P: Protocol,
    I: IntoIterator<Item = StepRecord>,
{
    replay_with(graph, protocol, seed, options, records, |_| {})
}

/// Checks a record's selection against the scheduler contract; returns a
/// description of the first violation.
fn selection_contract_violation(record: &StepRecord, node_count: usize) -> Option<String> {
    if record.activations.is_empty() {
        return Some("recorded selection is empty".to_string());
    }
    let mut prev: Option<NodeId> = None;
    for activation in &record.activations {
        let p = activation.process;
        if p.index() >= node_count {
            return Some(format!(
                "recorded selection names process {p} but the graph has {node_count} processes"
            ));
        }
        if prev.is_some_and(|q| q >= p) {
            return Some(format!(
                "recorded selection is not strictly increasing at process {p}"
            ));
        }
        prev = Some(p);
    }
    None
}

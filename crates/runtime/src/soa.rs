//! Struct-of-arrays storage for per-node protocol state.
//!
//! The executor keeps one state value and one communication value per node.
//! For small graphs an array of structs (`Vec<P::State>`) is ideal, but at
//! n = 10⁶–10⁷ the padding and width of heterogeneous rows dominate the
//! footprint and thrash the cache. This module lets each protocol opt into a
//! **struct-of-arrays** layout: the [`SoaState`] trait names a [`StateColumns`]
//! implementation that decomposes the struct into dense typed columns
//! (`Vec<u32>`, [`BitColumn`](selfstab_graph::columns::BitColumn), …), and
//! [`StateStore`] holds either layout behind one accessor surface.
//!
//! The existing struct types stay the API: protocols still receive `&State`
//! and return `State`; columns are decoded to a stack-local row at the access
//! site ([`StateStore::with_row`]) and encoded back field-by-field on write
//! ([`StateStore::set`]). Layout choice is per-simulation
//! ([`SimOptions::with_soa_layout`](crate::SimOptions::with_soa_layout)) and
//! never changes observable behavior — a differential test pins SoA executions
//! byte-identical to the array-of-structs executor at every worker count.
//!
//! Types without a hand-written column decomposition set
//! [`SoaState::COLUMNAR`]`= false` (usually via the blanket `Vec<Self>`
//! columns); the store then keeps rows even when SoA is requested, so the
//! trait bound is never a functionality cliff.

use std::fmt;

/// Columnar backing storage for rows of type `T`.
///
/// Implementations own one dense column per field of `T`. Row access is by
/// value: `get` decodes a stack-local `T` from the columns, `set` encodes a
/// `T` back. All columns must stay the same length.
pub trait StateColumns<T>: fmt::Debug + Clone + Send + Sync {
    /// Builds the columns from a slice of rows.
    fn from_slice(rows: &[T]) -> Self;
    /// Number of rows.
    fn len(&self) -> usize;
    /// Whether the store holds zero rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Decodes row `i`.
    fn get(&self, i: usize) -> T;
    /// Encodes `value` into row `i`.
    fn set(&mut self, i: usize, value: &T);
    /// Heap bytes owned by the columns (for bytes-per-node accounting).
    fn heap_bytes(&self) -> usize;
}

/// Rows of `Clone` values can always fall back to plain `Vec` storage.
impl<T: Clone + Send + Sync + fmt::Debug> StateColumns<T> for Vec<T> {
    fn from_slice(rows: &[T]) -> Self {
        rows.to_vec() // lint: allow(hot-alloc) — store construction from rows
    }
    fn len(&self) -> usize {
        self.as_slice().len()
    }
    fn get(&self, i: usize) -> T {
        self[i].clone() // lint: allow(hot-alloc) — by-value row API; states are small plain data
    }
    fn set(&mut self, i: usize, value: &T) {
        self[i] = value.clone(); // lint: allow(hot-alloc) — by-value row API; states are small plain data
    }
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

/// A per-node state (or communication) type that names its columnar layout.
///
/// Every `Protocol::State` and `Protocol::Comm` must implement this. Types
/// with a genuine field decomposition set [`COLUMNAR`](Self::COLUMNAR) to
/// `true` and point `Columns` at a hand-written struct-of-arrays type; plain
/// scalar types use `Vec<Self>` columns (dense already); compound types
/// without a decomposition use [`aos_state!`](crate::aos_state) to keep row
/// storage under either layout.
pub trait SoaState: Clone + Send + Sync + Sized {
    /// The struct-of-arrays backing storage for rows of this type.
    type Columns: StateColumns<Self>;
    /// Whether `Columns` is a genuine columnar layout. When `false`, a
    /// [`StateStore`] keeps array-of-structs rows even if SoA was requested,
    /// so `as_slice` stays available and views stay zero-cost.
    const COLUMNAR: bool;
}

/// Implements [`SoaState`] with plain row storage (`Vec<Self>` columns) for
/// types that have no columnar decomposition. The simulation then always uses
/// array-of-structs rows for that type, even when the SoA layout is requested.
#[macro_export]
macro_rules! aos_state {
    ($($t:ty),* $(,)?) => {$(
        impl $crate::soa::SoaState for $t {
            type Columns = ::std::vec::Vec<$t>;
            const COLUMNAR: bool = false;
        }
    )*};
}

/// Scalar types are already dense: a `Vec` of them *is* the column.
/// `COLUMNAR = true` so requesting SoA routes access through the columnar
/// code path (exercised by the runtime's own test protocols).
macro_rules! scalar_soa_state {
    ($($t:ty),* $(,)?) => {$(
        impl SoaState for $t {
            type Columns = Vec<$t>;
            const COLUMNAR: bool = true;
        }
    )*};
}

scalar_soa_state!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Pairs fall back to row storage (used by guarded-protocol tests and quick
/// prototypes; write a dedicated `Columns` type for anything hot).
impl<A, B> SoaState for (A, B)
where
    A: Clone + Send + Sync + fmt::Debug,
    B: Clone + Send + Sync + fmt::Debug,
{
    type Columns = Vec<(A, B)>;
    const COLUMNAR: bool = false;
}

/// Per-node state storage in either layout.
///
/// `Aos` is the default: a plain `Vec` of rows, zero-cost slice access.
/// `Soa` holds the type's [`StateColumns`] and decodes rows on demand.
#[derive(Debug, Clone)]
pub enum StateStore<T: SoaState> {
    /// Array-of-structs rows.
    Aos(Vec<T>),
    /// Struct-of-arrays columns.
    Soa(T::Columns),
}

impl<T: SoaState> StateStore<T> {
    /// Builds a store from rows. `soa = true` selects the columnar layout —
    /// honored only when the type actually has one (`T::COLUMNAR`); otherwise
    /// rows are kept, which is the identical memory layout anyway.
    #[must_use]
    pub fn from_vec(rows: Vec<T>, soa: bool) -> Self {
        if soa && T::COLUMNAR {
            StateStore::Soa(T::Columns::from_slice(&rows))
        } else {
            StateStore::Aos(rows)
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            StateStore::Aos(rows) => rows.len(),
            StateStore::Soa(cols) => cols.len(),
        }
    }

    /// Whether the store holds zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this store is in the columnar layout.
    #[must_use]
    pub fn is_soa(&self) -> bool {
        matches!(self, StateStore::Soa(_))
    }

    /// Reads row `i` by value (clone in AoS, column decode in SoA).
    #[must_use]
    pub fn get(&self, i: usize) -> T {
        match self {
            StateStore::Aos(rows) => rows[i].clone(), // lint: allow(hot-alloc) — by-value row API; states are small plain data
            StateStore::Soa(cols) => cols.get(i),
        }
    }

    /// Writes row `i`.
    pub fn set(&mut self, i: usize, value: &T) {
        match self {
            StateStore::Aos(rows) => rows[i] = value.clone(), // lint: allow(hot-alloc) — by-value row API; states are small plain data
            StateStore::Soa(cols) => cols.set(i, value),
        }
    }

    /// Applies `f` to row `i` without copying in the AoS layout (the SoA
    /// layout decodes a stack-local row first). This is the hot-path accessor:
    /// guard evaluation and activation read through it.
    pub fn with_row<R>(&self, i: usize, f: impl FnOnce(&T) -> R) -> R {
        match self {
            StateStore::Aos(rows) => f(&rows[i]),
            StateStore::Soa(cols) => {
                let row = cols.get(i);
                f(&row)
            }
        }
    }

    /// The contiguous row slice, when rows exist (`None` in the SoA layout).
    #[must_use]
    pub fn as_slice(&self) -> Option<&[T]> {
        match self {
            StateStore::Aos(rows) => Some(rows),
            StateStore::Soa(_) => None,
        }
    }

    /// The columnar backing storage, when this store is in the SoA layout
    /// (`None` for array-of-structs rows). This is how bulk guard kernels
    /// ([`Protocol::refresh_guards_bulk`](crate::protocol::Protocol::refresh_guards_bulk))
    /// reach the raw columns: a kernel that receives `None` declines and the
    /// executor falls back to the scalar row-decode path.
    #[must_use]
    pub fn columns(&self) -> Option<&T::Columns> {
        match self {
            StateStore::Aos(_) => None,
            StateStore::Soa(cols) => Some(cols),
        }
    }

    /// Materializes all rows into a `Vec` (allocates in the SoA layout).
    #[must_use]
    pub fn to_vec(&self) -> Vec<T> {
        match self {
            StateStore::Aos(rows) => rows.clone(), // lint: allow(hot-alloc) — documented materializing accessor
            StateStore::Soa(cols) => (0..cols.len()).map(|i| cols.get(i)).collect(), // lint: allow(hot-alloc) — documented materializing accessor
        }
    }

    /// Consumes the store into rows.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        match self {
            StateStore::Aos(rows) => rows,
            StateStore::Soa(cols) => (0..cols.len()).map(|i| cols.get(i)).collect(), // lint: allow(hot-alloc) — documented materializing accessor
        }
    }

    /// Heap bytes owned by the backing storage.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            StateStore::Aos(rows) => rows.capacity() * std::mem::size_of::<T>(),
            StateStore::Soa(cols) => cols.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_store_roundtrips_in_both_layouts() {
        let rows: Vec<u32> = (0..257).map(|i| i * 7).collect();
        for soa in [false, true] {
            let mut store = StateStore::from_vec(rows.clone(), soa);
            assert_eq!(store.is_soa(), soa);
            assert_eq!(store.len(), 257);
            assert!(!store.is_empty());
            assert_eq!(store.to_vec(), rows);
            assert_eq!(store.get(13), 91);
            store.set(13, &999);
            assert_eq!(store.get(13), 999);
            assert_eq!(store.with_row(13, |v| *v + 1), 1000);
            assert_eq!(store.as_slice().is_some(), !soa);
            assert_eq!(store.columns().is_some(), soa);
            assert!(store.heap_bytes() >= 257 * 4);
        }
    }

    #[test]
    fn non_columnar_types_stay_aos() {
        let rows: Vec<(usize, bool)> = vec![(1, true), (2, false)];
        let store = StateStore::from_vec(rows.clone(), true);
        assert!(!store.is_soa());
        assert_eq!(store.as_slice(), Some(rows.as_slice()));
        assert_eq!(store.into_vec(), rows);
    }

    #[test]
    fn vec_columns_report_heap_bytes() {
        let cols = <Vec<u64> as StateColumns<u64>>::from_slice(&[1, 2, 3]);
        assert_eq!(StateColumns::len(&cols), 3);
        assert!(!StateColumns::is_empty(&cols));
        assert!(cols.heap_bytes() >= 24);
    }
}

//! Bulk guard-kernel support: the write-side plumbing that lets a protocol
//! refresh many guards in one call over its raw state columns.
//!
//! The executor's phase A normally dequeues dirty nodes one at a time,
//! decodes a row per node and calls the scalar guard
//! ([`Protocol::is_enabled`](crate::protocol::Protocol::is_enabled)). When
//! the simulation runs the columnar layout, a protocol can instead implement
//! [`Protocol::refresh_guards_bulk`](crate::protocol::Protocol::refresh_guards_bulk)
//! and evaluate the whole dirty batch with word-parallel bit operations and
//! branch-light column scans. The kernel reports each verdict through an
//! [`EnabledWriter`], which replicates the executor's flag-flip and delta
//! accounting exactly — so the maintained enabled set, `RunStats`, traces
//! and replay stay byte-identical to the scalar path.

use selfstab_graph::NodeId;

/// Write cursor over one shard's enabled flags, handed to bulk guard
/// kernels by the executor.
///
/// The executor maintains the enabled set incrementally: a per-node `bool`
/// flag plus a running count. A kernel reports the guard verdict of every
/// dirty node it was given through [`write`](Self::write); the writer flips
/// the flag only when the verdict changed and accumulates the count delta,
/// mirroring the scalar path's bookkeeping bit for bit. Verdicts may arrive
/// in any order, but exactly one verdict per dirty node must be written —
/// the executor charges one guard evaluation per node in the batch.
#[derive(Debug)]
pub struct EnabledWriter<'a> {
    /// Global index of the first node of the shard `flags` covers.
    node_base: usize,
    /// The shard's slice of the per-node enabled flags.
    flags: &'a mut [bool],
    /// Net change to the enabled count from the verdicts written so far.
    delta: isize,
}

impl<'a> EnabledWriter<'a> {
    /// Wraps a shard's flag slice. `node_base` is the global index of
    /// `flags[0]`; kernels address nodes by their global [`NodeId`].
    #[must_use]
    pub fn new(node_base: usize, flags: &'a mut [bool]) -> Self {
        Self {
            node_base,
            flags,
            delta: 0,
        }
    }

    /// Records the guard verdict for node `p`. Panics if `p` lies outside
    /// the shard this writer covers.
    #[inline]
    pub fn write(&mut self, p: NodeId, enabled: bool) {
        let local = p.index() - self.node_base;
        if self.flags[local] != enabled {
            self.flags[local] = enabled;
            self.delta += if enabled { 1 } else { -1 };
        }
    }

    /// Net change to the enabled count accumulated by this writer.
    #[must_use]
    pub fn delta(&self) -> isize {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_flips_flags_and_tracks_the_delta() {
        let mut flags = [false, true, false, true];
        let mut writer = EnabledWriter::new(10, &mut flags);
        writer.write(NodeId::new(10), true); // false -> true: +1
        writer.write(NodeId::new(11), true); // unchanged
        writer.write(NodeId::new(12), false); // unchanged
        writer.write(NodeId::new(13), false); // true -> false: -1
        assert_eq!(writer.delta(), 0);
        writer.write(NodeId::new(12), true); // +1
        assert_eq!(writer.delta(), 1);
        assert_eq!(flags, [true, true, true, false]);
    }

    #[test]
    #[should_panic]
    fn out_of_shard_writes_panic() {
        let mut flags = [false; 2];
        let mut writer = EnabledWriter::new(4, &mut flags);
        writer.write(NodeId::new(3), true);
    }
}

//! Schedulers (daemons): which processes are activated at each step.
//!
//! The paper assumes a **distributed fair** scheduler: any non-empty subset
//! of processes may be selected at each step, and every process is selected
//! infinitely often. [`DistributedRandom`] models it (fair with probability
//! 1); [`Fair`] wraps any scheduler with an explicit fairness enforcer so
//! that even adversarial strategies satisfy the assumption within a bounded
//! window. The synchronous and central daemons are special cases useful for
//! experiments and for deterministic tests.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;
use selfstab_graph::NodeId;

use crate::enabled::EnabledSet;

/// Read-only information handed to a scheduler when it selects a step.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerContext<'a> {
    /// 0-based index of the step being scheduled.
    pub step: u64,
    /// The enabled set maintained incrementally by the executor: which
    /// processes have an enabled action in the current configuration, with
    /// an `O(1)` cardinality. Schedulers consume this instead of a freshly
    /// recomputed per-step vector.
    pub enabled: &'a EnabledSet,
}

impl<'a> SchedulerContext<'a> {
    /// Number of processes in the system.
    pub fn node_count(&self) -> usize {
        self.enabled.node_count()
    }

    /// Iterates the identifiers of the currently enabled processes in
    /// increasing id order.
    ///
    /// Allocation-free view over the maintained [`EnabledSet`] — this was
    /// the last allocating accessor behind the select path (it used to
    /// collect a fresh `Vec` per call). Callers that need an owned list
    /// `collect()` explicitly.
    pub fn enabled_nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.enabled.iter()
    }
}

/// A scheduler selects a non-empty subset of processes at every step.
///
/// # Contract
///
/// * The executor only invokes [`Scheduler::select`] on **non-empty**
///   systems (`ctx.node_count() >= 1`); a scheduler given an empty system
///   should panic rather than fabricate a selection.
/// * The executor hands `select` an **empty** buffer (cleared, but with its
///   previous capacity — across steps this makes selection allocation-free
///   once the buffer has grown to the scheduler's working size).
/// * On return the buffer must hold a non-empty subset of `0..n` in
///   **strictly increasing order** (sorted, no duplicates). The executor
///   `debug_assert`s this instead of re-sorting on the hot path; daemons
///   that generate selections out of order (e.g. via shuffling) sort before
///   returning. Selecting a *disabled* process is allowed (it is a no-op
///   activation in the model).
pub trait Scheduler {
    /// Short human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// Writes the processes activated at this step into `out`.
    ///
    /// See the [trait documentation](Scheduler) for the selection contract.
    fn select(&mut self, ctx: &SchedulerContext<'_>, rng: &mut dyn RngCore, out: &mut Vec<NodeId>);
}

/// Boxed schedulers forward to their contents, so heterogeneous scheduler
/// collections (`Box<dyn Scheduler>`) can be driven — and wrapped in
/// [`Fair`] — like any concrete scheduler.
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn select(&mut self, ctx: &SchedulerContext<'_>, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        (**self).select(ctx, rng, out);
    }
}

/// Synchronous daemon: every process is activated at every step.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synchronous;

impl Scheduler for Synchronous {
    fn name(&self) -> &'static str {
        "synchronous"
    }

    fn select(
        &mut self,
        ctx: &SchedulerContext<'_>,
        _rng: &mut dyn RngCore,
        out: &mut Vec<NodeId>,
    ) {
        out.extend((0..ctx.node_count()).map(NodeId::new));
    }
}

/// Central round-robin daemon: exactly one process per step, in cyclic order.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralRoundRobin {
    next: usize,
}

impl CentralRoundRobin {
    /// Creates a round-robin daemon starting from process 0.
    pub fn new() -> Self {
        CentralRoundRobin { next: 0 }
    }
}

impl Scheduler for CentralRoundRobin {
    fn name(&self) -> &'static str {
        "central-round-robin"
    }

    /// # Panics
    ///
    /// Panics on an empty system (`n = 0`): there is no process to select,
    /// and silently clamping would fabricate a selection of a process that
    /// does not exist (see the [`Scheduler`] contract).
    fn select(
        &mut self,
        ctx: &SchedulerContext<'_>,
        _rng: &mut dyn RngCore,
        out: &mut Vec<NodeId>,
    ) {
        let n = ctx.node_count();
        assert!(
            n > 0,
            "CentralRoundRobin cannot select from an empty system"
        );
        let chosen = NodeId::new(self.next % n);
        self.next = (self.next + 1) % n;
        out.push(chosen);
    }
}

/// Central random daemon: one uniformly random process per step.
///
/// Prefers enabled processes when `prefer_enabled` is set, which speeds up
/// convergence measurements without affecting correctness (selecting a
/// disabled process is a no-op in the model).
#[derive(Debug, Clone, Copy)]
pub struct CentralRandom {
    prefer_enabled: bool,
}

impl CentralRandom {
    /// One uniformly random process per step.
    pub fn new() -> Self {
        CentralRandom {
            prefer_enabled: false,
        }
    }

    /// One uniformly random *enabled* process per step (falls back to any
    /// process when none is enabled).
    pub fn enabled_only() -> Self {
        CentralRandom {
            prefer_enabled: true,
        }
    }
}

impl Default for CentralRandom {
    fn default() -> Self {
        CentralRandom::new()
    }
}

impl Scheduler for CentralRandom {
    fn name(&self) -> &'static str {
        "central-random"
    }

    /// # Panics
    ///
    /// Panics on an empty system (`n = 0`), per the [`Scheduler`] contract.
    fn select(&mut self, ctx: &SchedulerContext<'_>, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        let n = ctx.node_count();
        assert!(n > 0, "CentralRandom cannot select from an empty system");
        if self.prefer_enabled && ctx.enabled.any() {
            // The maintained enabled set makes this allocation-free: draw a
            // rank among the enabled processes and walk to it.
            let rank = rng.gen_range(0..ctx.enabled.count());
            if let Some(p) = ctx.enabled.iter().nth(rank) {
                out.push(p);
                return;
            }
        }
        out.push(NodeId::new(rng.gen_range(0..n)));
    }
}

/// Distributed random daemon: every process is selected independently with
/// probability `activation_prob`; if the sample is empty, one process is
/// drawn uniformly so the step is never empty.
///
/// This daemon is fair with probability 1, which is the paper's assumption
/// for the probabilistic convergence of the COLORING protocol.
#[derive(Debug, Clone, Copy)]
pub struct DistributedRandom {
    activation_prob: f64,
}

impl DistributedRandom {
    /// Creates the daemon with a per-process activation probability clamped
    /// to `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `activation_prob` is NaN (clamping would silently
    /// propagate it into every selection).
    pub fn new(activation_prob: f64) -> Self {
        assert!(!activation_prob.is_nan(), "activation probability is NaN");
        DistributedRandom {
            activation_prob: activation_prob.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }
}

impl Default for DistributedRandom {
    fn default() -> Self {
        DistributedRandom::new(0.5)
    }
}

impl Scheduler for DistributedRandom {
    fn name(&self) -> &'static str {
        "distributed-random"
    }

    fn select(&mut self, ctx: &SchedulerContext<'_>, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        let n = ctx.node_count();
        // Ascending visit order keeps the output sorted by construction.
        for i in 0..n {
            if rng.gen_bool(self.activation_prob) {
                out.push(NodeId::new(i));
            }
        }
        if out.is_empty() && n > 0 {
            out.push(NodeId::new(rng.gen_range(0..n)));
        }
    }
}

/// Adversarial daemon that tries to starve progress: it activates only the
/// single enabled process that was activated most recently (breaking ties by
/// smallest index), in an attempt to let the same processes run over and
/// over. Wrap it in [`Fair`] to satisfy the paper's fairness assumption.
#[derive(Debug, Clone, Default)]
pub struct StarvingAdversary {
    last_activation: Vec<u64>,
}

impl StarvingAdversary {
    /// Creates the adversary.
    pub fn new() -> Self {
        StarvingAdversary {
            last_activation: Vec::new(),
        }
    }
}

impl Scheduler for StarvingAdversary {
    fn name(&self) -> &'static str {
        "starving-adversary"
    }

    /// # Panics
    ///
    /// Panics on an empty system (`n = 0`), per the [`Scheduler`] contract.
    fn select(&mut self, ctx: &SchedulerContext<'_>, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        let n = ctx.node_count();
        assert!(
            n > 0,
            "StarvingAdversary cannot select from an empty system"
        );
        if self.last_activation.len() != n {
            self.last_activation = vec![0; n];
        }
        let chosen = ctx
            .enabled
            .iter()
            .max_by_key(|p| {
                (
                    self.last_activation[p.index()],
                    std::cmp::Reverse(p.index()),
                )
            })
            .unwrap_or_else(|| NodeId::new(rng.gen_range(0..n)));
        self.last_activation[chosen.index()] = ctx.step + 1;
        out.push(chosen);
    }
}

/// Locally-central daemon: selects a random *independent* set of enabled
/// processes — no two neighbors are ever activated in the same step.
///
/// Many self-stabilizing algorithms in the literature are proved under this
/// daemon because it removes simultaneous moves of neighbors; it is a
/// strictly weaker adversary than the distributed daemon, so every protocol
/// in this crate also works under it. Useful for experiments isolating the
/// effect of neighbor concurrency.
#[derive(Debug, Clone)]
pub struct LocallyCentral {
    /// `neighbors[p]` lists the neighbor indices of process `p`.
    neighbors: Vec<Vec<usize>>,
    activation_prob: f64,
    /// Scratch: visit order of the greedy independent-set pass (reused
    /// across steps so selection stays allocation-free in steady state).
    order: Vec<usize>,
    /// Scratch: `kept[p]` marks processes already added this step.
    kept: Vec<bool>,
}

impl LocallyCentral {
    /// Creates the daemon for `graph` with the given per-process activation
    /// probability (clamped to `(0, 1]`).
    pub fn new(graph: &selfstab_graph::Graph, activation_prob: f64) -> Self {
        assert!(!activation_prob.is_nan(), "activation probability is NaN");
        let neighbors = graph
            .nodes()
            .map(|p| graph.neighbors(p).map(|q| q.index()).collect())
            .collect();
        LocallyCentral {
            neighbors,
            activation_prob: activation_prob.clamp(f64::MIN_POSITIVE, 1.0),
            order: Vec::new(),
            kept: Vec::new(),
        }
    }
}

impl Scheduler for LocallyCentral {
    fn name(&self) -> &'static str {
        "locally-central"
    }

    fn select(&mut self, ctx: &SchedulerContext<'_>, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        let n = ctx.node_count();
        // Visit processes in a random order, greedily keeping those whose
        // neighbors have not been kept yet.
        self.order.clear();
        self.order.extend(0..n);
        self.order.shuffle(rng);
        self.kept.clear();
        self.kept.resize(n, false);
        for i in 0..self.order.len() {
            let p = self.order[i];
            if !rng.gen_bool(self.activation_prob) {
                continue;
            }
            let conflicts = self
                .neighbors
                .get(p)
                .map(|ns| ns.iter().any(|&q| self.kept[q]))
                .unwrap_or(false);
            if !conflicts {
                self.kept[p] = true;
                out.push(NodeId::new(p));
            }
        }
        if out.is_empty() && n > 0 {
            out.push(NodeId::new(rng.gen_range(0..n)));
        }
        // The greedy pass visits in shuffled order; the contract wants
        // sorted output.
        out.sort_unstable();
    }
}

/// Fairness-enforcing wrapper: guarantees that no process goes more than
/// `window` consecutive steps without being selected, by force-including any
/// overdue process in the selection.
///
/// With this wrapper, any inner scheduler satisfies the paper's *fair*
/// assumption (every process selected infinitely often).
#[derive(Debug, Clone)]
pub struct Fair<S> {
    inner: S,
    window: u64,
    last_selected: Vec<u64>,
}

impl<S: Scheduler> Fair<S> {
    /// Wraps `inner`, forcing every process to be selected at least once
    /// every `window` steps (`window >= 1`).
    pub fn new(inner: S, window: u64) -> Self {
        Fair {
            inner,
            window: window.max(1),
            last_selected: Vec::new(),
        }
    }

    /// Read access to the wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Scheduler> Scheduler for Fair<S> {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn select(&mut self, ctx: &SchedulerContext<'_>, rng: &mut dyn RngCore, out: &mut Vec<NodeId>) {
        let n = ctx.node_count();
        if self.last_selected.len() != n {
            self.last_selected = vec![ctx.step; n];
        }
        self.inner.select(ctx, rng, out);
        let inner_len = out.len();
        for i in 0..n {
            if ctx.step.saturating_sub(self.last_selected[i]) >= self.window {
                let p = NodeId::new(i);
                if !out[..inner_len].contains(&p) {
                    out.push(p);
                }
            }
        }
        for p in out.iter() {
            self.last_selected[p.index()] = ctx.step + 1;
        }
        // Force-included processes were appended out of order.
        if out.len() > inner_len {
            out.sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set(flags: &[bool]) -> EnabledSet {
        EnabledSet::from_flags(flags.to_vec())
    }

    fn ctx<'a>(enabled: &'a EnabledSet, step: u64) -> SchedulerContext<'a> {
        SchedulerContext { step, enabled }
    }

    /// Test adapter for the buffer-based contract: returns the selection as
    /// an owned vector, as the old `select` signature did.
    fn select_vec<S: Scheduler + ?Sized>(
        s: &mut S,
        ctx: &SchedulerContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        s.select(ctx, rng, &mut out);
        assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "{}: selection must be sorted and duplicate-free, got {out:?}",
            s.name()
        );
        out
    }

    /// Compile-time Send audit: parallel experiment campaigns build one
    /// daemon per cell and may move it to a worker thread, so every daemon
    /// in this module (and the boxed forms the experiments pass around)
    /// must be Send.
    #[test]
    fn every_scheduler_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Synchronous>();
        assert_send::<CentralRoundRobin>();
        assert_send::<CentralRandom>();
        assert_send::<DistributedRandom>();
        assert_send::<StarvingAdversary>();
        assert_send::<LocallyCentral>();
        assert_send::<Fair<DistributedRandom>>();
        assert_send::<Box<dyn Scheduler + Send>>();
    }

    #[test]
    fn synchronous_selects_everyone() {
        let enabled = set(&[true, false, true]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Synchronous;
        assert_eq!(select_vec(&mut s, &ctx(&enabled, 0), &mut rng).len(), 3);
    }

    #[test]
    fn selection_buffer_is_reused_not_grown() {
        let enabled = set(&[true; 16]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Synchronous;
        let mut out = Vec::new();
        s.select(&ctx(&enabled, 0), &mut rng, &mut out);
        let capacity = out.capacity();
        for step in 1..50 {
            out.clear();
            s.select(&ctx(&enabled, step), &mut rng, &mut out);
        }
        assert_eq!(out.len(), 16);
        assert_eq!(out.capacity(), capacity, "steady-state capacity is stable");
    }

    #[test]
    fn round_robin_cycles_over_processes() {
        let enabled = set(&[true; 3]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = CentralRoundRobin::new();
        let picks: Vec<usize> = (0..6)
            .map(|i| select_vec(&mut s, &ctx(&enabled, i), &mut rng)[0].index())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "empty system")]
    fn round_robin_rejects_empty_systems() {
        let enabled = set(&[]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = CentralRoundRobin::new();
        let _ = select_vec(&mut s, &ctx(&enabled, 0), &mut rng);
    }

    #[test]
    fn central_random_prefers_enabled_when_asked() {
        let enabled = set(&[false, false, true, false]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = CentralRandom::enabled_only();
        for step in 0..20 {
            let picked = select_vec(&mut s, &ctx(&enabled, step), &mut rng);
            assert_eq!(picked, vec![NodeId::new(2)]);
        }
        // Falls back to any process when nothing is enabled.
        let none = set(&[false; 4]);
        let picked = select_vec(&mut s, &ctx(&none, 0), &mut rng);
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn distributed_random_never_returns_empty() {
        let enabled = set(&[true; 5]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = DistributedRandom::new(0.01);
        for step in 0..200 {
            assert!(!select_vec(&mut s, &ctx(&enabled, step), &mut rng).is_empty());
        }
    }

    #[test]
    fn distributed_random_eventually_selects_everyone() {
        let enabled = set(&[true; 6]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = DistributedRandom::new(0.3);
        let mut seen = [false; 6];
        for step in 0..500 {
            for p in select_vec(&mut s, &ctx(&enabled, step), &mut rng) {
                seen[p.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "fair with probability 1");
    }

    #[test]
    fn starving_adversary_keeps_activating_the_same_process() {
        let enabled = set(&[true; 4]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = StarvingAdversary::new();
        let first = select_vec(&mut s, &ctx(&enabled, 0), &mut rng)[0];
        for step in 1..10 {
            assert_eq!(
                select_vec(&mut s, &ctx(&enabled, step), &mut rng),
                vec![first]
            );
        }
    }

    #[test]
    fn locally_central_never_activates_two_neighbors() {
        let graph = selfstab_graph::generators::ring(8);
        let enabled = set(&[true; 8]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = LocallyCentral::new(&graph, 0.8);
        for step in 0..200 {
            let chosen = select_vec(&mut s, &ctx(&enabled, step), &mut rng);
            assert!(!chosen.is_empty());
            for &a in &chosen {
                for &b in &chosen {
                    if a != b {
                        assert!(
                            !graph.has_edge(a, b),
                            "neighbors {a} and {b} both activated"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fair_wrapper_bounds_starvation() {
        let enabled = set(&[true; 4]);
        let mut rng = StdRng::seed_from_u64(5);
        let window = 6;
        let mut s = Fair::new(StarvingAdversary::new(), window);
        let mut last = [0u64; 4];
        for step in 0..100 {
            for p in select_vec(&mut s, &ctx(&enabled, step), &mut rng) {
                last[p.index()] = step;
            }
            for (i, &l) in last.iter().enumerate() {
                assert!(step - l <= window, "process {i} starved at step {step}");
            }
        }
        assert_eq!(s.inner().name(), "starving-adversary");
    }
}

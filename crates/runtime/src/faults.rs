//! Transient-fault injection and the declarative fault-scenario engine.
//!
//! Self-stabilization promises recovery from *any* transient fault: a fault
//! may overwrite the variables of any subset of processes with arbitrary
//! values. But *which* subset matters enormously for the repair bill — a
//! ♦-k-efficient silent protocol may pay full-Δ communication during
//! repair, and corrupting a hub, a whole region, or a state crafted to
//! flip many guards produces very different recovery regimes than the
//! uniform-random corruption the easiest-case experiments explore.
//!
//! This module provides three layers:
//!
//! * **[`FaultModel`]** — *what* a single injection corrupts: uniformly
//!   random victims, the highest-degree hubs, a BFS ball around a center
//!   (correlated regional corruption), or adversarial `StuckAt` states
//!   chosen (by candidate search) to maximize guard churn in the victim's
//!   neighborhood,
//! * **[`FaultPlan`]** — *when* injections happen: a sorted list of timed
//!   [`FaultEvent`]s (single shots, periodic re-injection, bursts) relative
//!   to the start of a scenario run,
//! * **[`run_fault_plan`]** — the scenario driver: executes a plan against
//!   a running [`Simulation`], records an [`InjectionRecord`] per event and
//!   a [`RoundSample`] per completed round (legitimacy, enabled fraction,
//!   read operations — the availability curve and read-cost spike profile
//!   of the recovery), and keeps stepping until the system quiesces or a
//!   budget runs out.
//!
//! Every injection goes through [`Simulation::set_state`], which refreshes
//! the executor's cached communication configuration and marks the victim
//! and its whole neighborhood dirty — so the incremental enabled set stays
//! sound even though a fault changes state outside the normal activation
//! path (see the regression tests in `tests/fault_daemon_equivalence.rs`).
//!
//! Victim selection runs on a reusable [`FaultInjector`] scratch: uniform
//! sampling is a **partial Fisher–Yates** over a persistent permutation
//! pool (`O(count)` random swaps per injection instead of the seed's full
//! `O(n)` shuffle), and the ball model's BFS reuses persistent distance and
//! queue buffers — repeated injections at `n = 10⁵` touch the allocator
//! not at all once warmed (enforced by `tests/zero_alloc.rs`).

use rand::{Rng, RngCore};
use selfstab_graph::{Graph, NodeId};
use std::fmt;

use crate::executor::Simulation;
use crate::protocol::Protocol;
use crate::scheduler::Scheduler;

/// Overwrites the state of `count` distinct random processes with freshly
/// sampled arbitrary states, returning the identifiers of the corrupted
/// processes.
///
/// `count` is clamped to the number of processes. One-shot convenience
/// wrapper around [`FaultInjector`]; callers injecting repeatedly (fault
/// plans, benches) should hold an injector themselves so the victim-pool
/// scratch is reused across injections.
pub fn inject_random_faults<P, S, R>(
    sim: &mut Simulation<'_, P, S>,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId>
where
    P: Protocol,
    S: Scheduler,
    R: RngCore,
{
    let mut injector = FaultInjector::new(sim.topology());
    injector
        .inject(sim, FaultModel::Uniform(FaultLoad::Count(count)), rng)
        .to_vec() // lint: allow(hot-alloc) — convenience wrapper; campaigns reuse the injector
}

/// Overwrites the state of the given processes with freshly sampled
/// arbitrary states.
pub fn inject_faults_at<P, S, R>(sim: &mut Simulation<'_, P, S>, victims: &[NodeId], rng: &mut R)
where
    P: Protocol,
    S: Scheduler,
    R: RngCore,
{
    for &p in victims {
        let state = sim.protocol().arbitrary_state(sim.topology(), p, rng);
        sim.set_state(p, state);
    }
}

/// A fault scenario for experiment definitions: how many processes to
/// corrupt, expressed as an absolute count or as a fraction of `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultLoad {
    /// Corrupt exactly this many processes.
    Count(usize),
    /// Corrupt `ceil(fraction * n)` processes.
    Fraction(f64),
}

impl FaultLoad {
    /// Resolves the scenario to a process count for a graph of `n`
    /// processes (at least 1 when the graph is non-empty and the load is
    /// non-zero).
    pub fn resolve(&self, graph: &Graph) -> usize {
        let n = graph.node_count();
        match *self {
            FaultLoad::Count(c) => c.min(n),
            FaultLoad::Fraction(f) => {
                if n == 0 || f <= 0.0 {
                    0
                } else {
                    ((f * n as f64).ceil() as usize).clamp(1, n)
                }
            }
        }
    }
}

impl fmt::Display for FaultLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultLoad::Count(c) => write!(f, "{c}"),
            FaultLoad::Fraction(frac) => write!(f, "{:.0}%", frac * 100.0),
        }
    }
}

/// Where a [`FaultModel::Ball`] injection is centered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BallCenter {
    /// A uniformly random process (fresh draw per injection).
    Random,
    /// The maximum-degree process (smallest id on ties) — the hub whose
    /// corruption radiates furthest.
    Hub,
    /// A fixed process index.
    Node(usize),
}

impl fmt::Display for BallCenter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BallCenter::Random => write!(f, "rand"),
            BallCenter::Hub => write!(f, "hub"),
            BallCenter::Node(i) => write!(f, "p{i}"),
        }
    }
}

/// *What* one fault injection corrupts: the victim-selection strategy (and,
/// for [`FaultModel::StuckAt`], the state-selection strategy) of a single
/// transient fault.
///
/// All variants overwrite victims with [`Protocol::arbitrary_state`]
/// samples except `StuckAt`, which searches a small candidate set per
/// victim for the state that *enables the most guards* in the victim's
/// closed neighborhood — the adversarial "stuck" value that maximizes
/// immediate repair churn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Uniformly random distinct victims (the classical, easiest-case
    /// model; what [`inject_random_faults`] uses).
    Uniform(FaultLoad),
    /// The highest-degree processes (hubs), ties broken by smaller id —
    /// the targeted-fault sensitivity model: corrupting a hub perturbs Δ
    /// neighborhoods at once.
    DegreeTargeted(FaultLoad),
    /// Every process within `radius` hops of `center` — correlated
    /// regional corruption (a "lightning strike" hitting one area).
    Ball {
        /// Center of the corrupted region.
        center: BallCenter,
        /// Hop radius; `0` corrupts only the center.
        radius: usize,
    },
    /// Uniformly random victims overwritten with adversarially chosen
    /// states: per victim, several arbitrary-state candidates are scored by
    /// how many guards they enable in the victim's closed neighborhood and
    /// the worst one sticks.
    StuckAt(FaultLoad),
}

/// Candidate states sampled per victim by the [`FaultModel::StuckAt`]
/// search.
const STUCK_AT_CANDIDATES: usize = 8;

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultModel::Uniform(load) => write!(f, "uniform({load})"),
            FaultModel::DegreeTargeted(load) => write!(f, "hubs({load})"),
            FaultModel::Ball { center, radius } => write!(f, "ball({center},r{radius})"),
            FaultModel::StuckAt(load) => write!(f, "stuck({load})"),
        }
    }
}

/// Reusable victim-selection scratch: repeated injections (fault plans,
/// large-n benches) select victims without touching the allocator once the
/// buffers are warm.
///
/// * `pool` holds a persistent permutation of all processes; uniform
///   sampling performs a **partial Fisher–Yates** — `count` random prefix
///   swaps — and reads the prefix. Any permutation of the pool is an
///   equally valid starting point, so the pool is never re-initialized.
/// * the ball model's BFS reuses a persistent distance array and queue.
/// * `victims` holds the most recent selection (readable until the next
///   injection).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Persistent permutation of all node ids (partial Fisher–Yates pool).
    pool: Vec<NodeId>,
    /// Victims of the most recent injection.
    victims: Vec<NodeId>,
    /// BFS scratch: hop distance per process; `u32::MAX` = unvisited.
    dist: Vec<u32>,
    /// BFS scratch: queue (drained by index, never popped from the front).
    queue: Vec<NodeId>,
    /// Nodes sorted by (degree desc, id asc); a fixed function of the
    /// graph, computed lazily on the first degree-targeted selection so
    /// periodic hub plans pay the `O(n log n)` sort once, not per event.
    by_degree: Vec<NodeId>,
    /// Scratch for [`FaultInjector::last_victims_distinct`]: sorted and
    /// deduplicated in place so distinctness checks stay allocation-free
    /// once warm.
    distinct_scratch: Vec<NodeId>,
}

impl FaultInjector {
    /// Creates the injector for `graph` (buffers sized to `n` once).
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        FaultInjector {
            pool: graph.nodes().collect(), // lint: allow(hot-alloc) — injector construction; buffers persist
            victims: Vec::with_capacity(n),
            dist: vec![u32::MAX; n], // lint: allow(hot-alloc) — injector construction; buffers persist
            queue: Vec::with_capacity(n),
            by_degree: Vec::new(), // lint: allow(hot-alloc) — filled once on first hub-targeted injection
            distinct_scratch: Vec::with_capacity(n),
        }
    }

    /// The victims of the most recent injection, in selection order.
    pub fn last_victims(&self) -> &[NodeId] {
        &self.victims
    }

    /// Whether the most recent selection hit pairwise-distinct processes —
    /// an invariant of every fault model (checked by `debug_assert!` after
    /// each selection). Uses a persistent sort-and-dedup scratch, so the
    /// check never allocates once warm.
    pub fn last_victims_distinct(&mut self) -> bool {
        self.distinct_scratch.clear();
        self.distinct_scratch.extend_from_slice(&self.victims);
        self.distinct_scratch.sort_unstable();
        self.distinct_scratch.dedup();
        self.distinct_scratch.len() == self.victims.len()
    }

    /// Selects the victims of `model` on `graph` into the internal buffer
    /// (no states are written — [`FaultInjector::inject`] does both).
    ///
    /// # Panics
    ///
    /// Panics if the injector was built for a different process count, or
    /// if a [`BallCenter::Node`] index is out of range.
    pub fn select_victims<R: RngCore>(
        &mut self,
        graph: &Graph,
        model: FaultModel,
        rng: &mut R,
    ) -> &[NodeId] {
        let n = graph.node_count();
        assert_eq!(
            self.pool.len(),
            n,
            "FaultInjector was built for a different graph size"
        );
        self.victims.clear();
        match model {
            FaultModel::Uniform(load) | FaultModel::StuckAt(load) => {
                let count = load.resolve(graph);
                // Partial Fisher–Yates: after i swaps the prefix pool[..i]
                // is a uniform i-subset in uniform order, regardless of the
                // permutation the pool started from.
                for i in 0..count {
                    let j = rng.gen_range(i..n);
                    self.pool.swap(i, j);
                    self.victims.push(self.pool[i]);
                }
            }
            FaultModel::DegreeTargeted(load) => {
                let count = load.resolve(graph);
                // (degree desc, id asc) order: deterministic, so hub
                // targeting is seed-independent; cached across injections.
                if self.by_degree.len() != n {
                    self.by_degree.clear();
                    self.by_degree.extend(graph.nodes());
                    self.by_degree
                        .sort_unstable_by_key(|&p| (std::cmp::Reverse(graph.degree(p)), p.index()));
                }
                self.victims.extend_from_slice(&self.by_degree[..count]);
            }
            FaultModel::Ball { center, radius } => {
                let center = match center {
                    BallCenter::Random => NodeId::new(rng.gen_range(0..n)),
                    BallCenter::Hub => graph
                        .nodes()
                        .max_by_key(|&p| (graph.degree(p), std::cmp::Reverse(p.index())))
                        .expect("non-empty graph"),
                    BallCenter::Node(i) => {
                        assert!(i < n, "ball center {i} out of range (n = {n})");
                        NodeId::new(i)
                    }
                };
                // Bounded BFS over persistent scratch.
                self.dist.iter_mut().for_each(|d| *d = u32::MAX);
                self.queue.clear();
                self.dist[center.index()] = 0;
                self.queue.push(center);
                let mut head = 0;
                while head < self.queue.len() {
                    let p = self.queue[head];
                    head += 1;
                    let d = self.dist[p.index()];
                    self.victims.push(p);
                    if (d as usize) < radius {
                        for q in graph.neighbors(p) {
                            if self.dist[q.index()] == u32::MAX {
                                self.dist[q.index()] = d + 1;
                                self.queue.push(q);
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(
            self.last_victims_distinct(),
            "fault models must select pairwise-distinct victims"
        );
        &self.victims
    }

    /// Executes one injection: selects victims per `model` and overwrites
    /// their states through [`Simulation::set_state`] (which keeps the
    /// incremental enabled set sound). Returns the victims.
    ///
    /// Allocation-free once warm for `Copy`-state protocols (the `StuckAt`
    /// search clones candidate states, so heap-backed states allocate there
    /// by necessity).
    pub fn inject<P, S, R>(
        &mut self,
        sim: &mut Simulation<'_, P, S>,
        model: FaultModel,
        rng: &mut R,
    ) -> &[NodeId]
    where
        P: Protocol,
        S: Scheduler,
        R: RngCore,
    {
        let graph = sim.topology();
        self.select_victims(graph, model, rng);
        let adversarial = matches!(model, FaultModel::StuckAt(_));
        for i in 0..self.victims.len() {
            let p = self.victims[i];
            if adversarial {
                // Candidate search: keep the state that enables the most
                // guards in p's closed neighborhood. Candidates are applied
                // through set_state so the maintained enabled set scores
                // them; the winner is re-applied last and therefore sticks.
                let mut best: Option<(P::State, usize)> = None;
                for _ in 0..STUCK_AT_CANDIDATES {
                    let candidate = sim.protocol().arbitrary_state(graph, p, rng);
                    sim.set_state(p, candidate.clone()); // lint: allow(hot-alloc) — bounded candidate search, not steady-state stepping
                    let enabled = sim.enabled_set();
                    let churn = enabled.is_enabled(p) as usize
                        + graph
                            .neighbors(p)
                            .filter(|&q| enabled.is_enabled(q))
                            .count();
                    if best.as_ref().is_none_or(|&(_, b)| churn > b) {
                        best = Some((candidate, churn));
                    }
                }
                let (state, _) = best.expect("at least one candidate");
                sim.set_state(p, state);
            } else {
                let state = sim.protocol().arbitrary_state(graph, p, rng);
                sim.set_state(p, state);
            }
        }
        // Re-checked after the `StuckAt` candidate search, not just after
        // selection: the search mutates the simulation per candidate, and
        // a future refactor routing that through victim bookkeeping must
        // not be able to duplicate entries unnoticed.
        debug_assert!(
            self.last_victims_distinct(),
            "fault injection must leave pairwise-distinct victims"
        );
        &self.victims
    }
}

/// One timed injection of a [`FaultPlan`]: the step offset (relative to the
/// start of the scenario run) at which `model` fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Steps after the start of the plan run at which the injection lands.
    pub at_step: u64,
    /// What the injection corrupts.
    pub model: FaultModel,
}

/// A declarative schedule of timed mid-run fault injections, executed by
/// [`run_fault_plan`]. Events are kept sorted by step offset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan firing the given events (sorted by offset internally; ties
    /// fire in the given order).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_step);
        FaultPlan { events }
    }

    /// A single injection at scenario start.
    pub fn single(model: FaultModel) -> Self {
        FaultPlan::new(vec![FaultEvent { at_step: 0, model }]) // lint: allow(hot-alloc) — plan construction
    }

    /// A single injection after `at_step` steps.
    pub fn delayed(model: FaultModel, at_step: u64) -> Self {
        FaultPlan::new(vec![FaultEvent { at_step, model }]) // lint: allow(hot-alloc) — plan construction
    }

    /// `injections` firings of `model`, `period` steps apart, starting at
    /// scenario start — periodic (bursty when `period` is small)
    /// re-injection while the previous repair may still be in flight.
    pub fn periodic(model: FaultModel, period: u64, injections: usize) -> Self {
        FaultPlan::new(
            (0..injections as u64)
                .map(|i| FaultEvent {
                    at_step: i * period,
                    model,
                })
                .collect(), // lint: allow(hot-alloc) — plan construction
        )
    }

    /// The events, sorted by step offset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Total processes a plan corrupts is plan- and run-dependent; the
    /// number of *events* is static.
    pub fn injection_count(&self) -> usize {
        self.events.len()
    }
}

/// One injection as it happened during a scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionRecord {
    /// Absolute simulation step at which the injection landed.
    pub step: u64,
    /// Absolute round count at injection time.
    pub round: u64,
    /// The model that fired.
    pub model: FaultModel,
    /// Number of corrupted processes.
    pub victims: usize,
}

/// Telemetry of one completed round during a scenario run: a point of the
/// availability curve and the read-cost spike profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSample {
    /// Absolute round index this sample closes.
    pub round: u64,
    /// Absolute simulation step at the round boundary.
    pub step: u64,
    /// Whether the configuration at the round boundary satisfies the
    /// protocol's legitimacy predicate (the availability signal).
    pub legitimate: bool,
    /// Fraction of processes with an enabled guard at the round boundary
    /// (0 once quiesced; the repair wave's footprint).
    pub enabled_fraction: f64,
    /// Read operations performed by the protocol during this round (the
    /// read-cost spike profile around injections).
    pub read_operations: u64,
}

/// Everything a scenario run observed: injections, the per-round recovery
/// curve, and the final outcome. Aggregated into a
/// `RecoveryReport` by `selfstab_core::measures`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryTelemetry {
    /// The injections, in firing order.
    pub injections: Vec<InjectionRecord>,
    /// One sample per completed round, in round order (covers the whole
    /// scenario run, including rounds between injections).
    pub rounds: Vec<RoundSample>,
    /// Whether the system quiesced (no enabled process) after the last
    /// injection within the budget.
    pub recovered: bool,
    /// Whether the final configuration satisfies the legitimacy predicate.
    pub legitimate: bool,
    /// Rounds from the last injection until quiescence (`None` when the
    /// budget ran out first).
    pub recovery_rounds: Option<u64>,
    /// Steps executed by the scenario run.
    pub steps: u64,
}

/// Executes `plan` against a running simulation: injects each event at its
/// step offset, then keeps stepping until the system is **silent** again
/// or `max_steps` scenario steps have been executed.
///
/// Silence is detected two ways: instantly when no process has an enabled
/// guard (MIS/MATCHING-style protocols whose guards fall quiet), and at
/// every round boundary through [`Protocol::is_silent_config`] (protocols
/// like COLORING or the leader election stay *guard-enabled* forever —
/// they keep probing one neighbor — yet their communication variables
/// quiesce; the per-round check amortizes the `O(n)` predicate to `O(1)`
/// per step under central daemons).
///
/// Per completed round the driver records a [`RoundSample`] (legitimacy,
/// enabled fraction, reads in the round), building the availability curve
/// and the read-spike profile of the recovery. The `injector` scratch is
/// reused across events (and across calls), so repeated scenarios at large
/// `n` stay allocation-free on the injection path.
///
/// Typically called on a stabilized simulation (so the recovery cost is
/// attributable to the plan), but any starting configuration works.
pub fn run_fault_plan<P, S, R>(
    sim: &mut Simulation<'_, P, S>,
    plan: &FaultPlan,
    injector: &mut FaultInjector,
    rng: &mut R,
    max_steps: u64,
) -> RecoveryTelemetry
where
    P: Protocol,
    S: Scheduler,
    R: RngCore,
{
    let start_step = sim.steps();
    let n = sim.topology().node_count().max(1);
    let mut telemetry = RecoveryTelemetry::default();
    let mut next_event = 0;
    let mut round_start_reads = sim.stats().total_read_operations();
    let mut rounds_at_last_injection = sim.rounds();
    // The first silence check may run the O(n) predicate (treated as a
    // round boundary) so a plan landing on an already-silent system with a
    // zero-event tail terminates immediately.
    let mut at_round_boundary = true;
    loop {
        let offset = sim.steps() - start_step;
        while next_event < plan.events.len() && plan.events[next_event].at_step <= offset {
            let model = plan.events[next_event].model;
            let metrics = crate::telemetry::metrics::active();
            // lint: allow(determinism) — injection timing feeds the metrics histograms only
            let injection_started = metrics.map(|_| std::time::Instant::now());
            let victims = injector.inject(sim, model, rng).len();
            if let (Some(m), Some(started)) = (metrics, injection_started) {
                m.record_fault_injection(victims as u64, started.elapsed());
            }
            telemetry.injections.push(InjectionRecord {
                step: sim.steps(),
                round: sim.rounds(),
                model,
                victims,
            });
            rounds_at_last_injection = sim.rounds();
            next_event += 1;
        }
        // Silence ends the scenario only once every event has fired. The
        // enabled-count fast path catches guard-quiescent protocols with
        // no O(n) work; `at_round_boundary` covers the ♦-efficient
        // protocols that stay enabled forever but stop writing.
        if next_event == plan.events.len() {
            let guard_quiet = sim.enabled_set().count() == 0;
            if guard_quiet || (at_round_boundary && sim.is_silent()) {
                telemetry.recovered = true;
                telemetry.recovery_rounds = Some(sim.rounds() - rounds_at_last_injection);
                break;
            }
        }
        if offset >= max_steps {
            break;
        }
        let rounds_before = sim.rounds();
        sim.step();
        at_round_boundary = sim.rounds() > rounds_before;
        if at_round_boundary {
            let reads_now = sim.stats().total_read_operations();
            telemetry.rounds.push(RoundSample {
                round: sim.rounds(),
                step: sim.steps(),
                legitimate: sim.is_legitimate(),
                enabled_fraction: sim.enabled_set().count() as f64 / n as f64,
                read_operations: reads_now - round_start_reads,
            });
            round_start_reads = reads_now;
        }
    }
    telemetry.legitimate = sim.is_legitimate();
    telemetry.steps = sim.steps() - start_step;
    telemetry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimOptions;
    use crate::scheduler::Synchronous;
    use crate::view::NeighborView;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use selfstab_graph::generators;
    use selfstab_graph::Port;

    struct MinValue;

    impl Protocol for MinValue {
        type State = u32;
        type Comm = u32;

        fn name(&self) -> &'static str {
            "min-value"
        }

        fn arbitrary_state(&self, _graph: &Graph, _p: NodeId, rng: &mut dyn RngCore) -> u32 {
            rng.gen_range(0..1000)
        }

        fn comm(&self, _p: NodeId, state: &u32) -> u32 {
            *state
        }

        fn is_enabled(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
        ) -> bool {
            (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
        }

        fn activate(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
            _rng: &mut dyn RngCore,
        ) -> Option<u32> {
            let min = (0..graph.degree(p))
                .map(|i| *view.read(Port::new(i)))
                .min()
                .unwrap_or(*state);
            (min < *state).then_some(min)
        }

        fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
            let min = config.iter().min().copied().unwrap_or(0);
            config.iter().all(|&v| v == min)
        }
    }

    #[test]
    fn faults_corrupt_and_recovery_follows() {
        let graph = generators::ring(8);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 5, SimOptions::default());
        sim.run_until_silent(1000);
        assert!(sim.is_legitimate());

        let mut rng = StdRng::seed_from_u64(99);
        let victims = inject_random_faults(&mut sim, 3, &mut rng);
        assert_eq!(victims.len(), 3);
        // MinValue is not actually self-stabilizing (a fault can lower the
        // minimum), but it always re-reaches a silent legitimate point of
        // its own spec, which is what we exercise here.
        let report = sim.run_until_silent(1000);
        assert!(report.silent);
        assert!(report.legitimate);
    }

    #[test]
    fn fault_count_is_clamped() {
        let graph = generators::path(4);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 6, SimOptions::default());
        let mut rng = StdRng::seed_from_u64(1);
        let victims = inject_random_faults(&mut sim, 100, &mut rng);
        assert_eq!(victims.len(), 4);

        // Distinctness via the injector's own allocation-free check.
        let mut injector = FaultInjector::new(&graph);
        injector.select_victims(&graph, FaultModel::Uniform(FaultLoad::Count(100)), &mut rng);
        assert_eq!(injector.last_victims().len(), 4);
        assert!(injector.last_victims_distinct(), "victims are distinct");
    }

    #[test]
    fn inject_at_specific_processes() {
        let graph = generators::path(5);
        let mut sim = Simulation::with_config(
            &graph,
            MinValue,
            Synchronous,
            vec![7; 5],
            3,
            SimOptions::default(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        inject_faults_at(&mut sim, &[NodeId::new(2)], &mut rng);
        // Exactly the targeted process may have changed.
        let changed: Vec<usize> = sim
            .config()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 7)
            .map(|(i, _)| i)
            .collect();
        assert!(changed.is_empty() || changed == vec![2]);
    }

    #[test]
    fn fault_load_resolution() {
        let graph = generators::ring(10);
        assert_eq!(FaultLoad::Count(3).resolve(&graph), 3);
        assert_eq!(FaultLoad::Count(30).resolve(&graph), 10);
        assert_eq!(FaultLoad::Fraction(0.25).resolve(&graph), 3);
        assert_eq!(FaultLoad::Fraction(0.0).resolve(&graph), 0);
        assert_eq!(FaultLoad::Fraction(0.01).resolve(&graph), 1);
        assert_eq!(FaultLoad::Fraction(2.0).resolve(&graph), 10);
    }

    #[test]
    fn uniform_victims_are_distinct_and_uniformly_spread() {
        let graph = generators::ring(16);
        let mut injector = FaultInjector::new(&graph);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0u32; 16];
        for _ in 0..400 {
            let victims =
                injector.select_victims(&graph, FaultModel::Uniform(FaultLoad::Count(4)), &mut rng);
            assert_eq!(victims.len(), 4);
            let mut sorted: Vec<_> = victims.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "distinct victims");
            for v in victims {
                hits[v.index()] += 1;
            }
        }
        // 400 draws of 4-of-16: every process expects 100 hits; a process
        // never (or always) drawn would betray a broken partial shuffle.
        assert!(
            hits.iter().all(|&h| (40..160).contains(&h)),
            "hit histogram is far from uniform: {hits:?}"
        );
    }

    #[test]
    fn degree_targeted_hits_the_hubs_deterministically() {
        let graph = generators::star(7); // hub 0 with degree 6
        let mut injector = FaultInjector::new(&graph);
        let mut rng = StdRng::seed_from_u64(4);
        let victims = injector
            .select_victims(
                &graph,
                FaultModel::DegreeTargeted(FaultLoad::Count(3)),
                &mut rng,
            )
            .to_vec();
        assert_eq!(victims[0], NodeId::new(0), "the hub is corrupted first");
        // Leaves tie at degree 1: smaller ids win.
        assert_eq!(victims[1..], [NodeId::new(1), NodeId::new(2)]);
        // No randomness involved: a second injector agrees.
        let mut other = FaultInjector::new(&graph);
        let mut rng2 = StdRng::seed_from_u64(999);
        assert_eq!(
            other.select_victims(
                &graph,
                FaultModel::DegreeTargeted(FaultLoad::Count(3)),
                &mut rng2
            ),
            &victims[..]
        );
    }

    #[test]
    fn ball_selects_exactly_the_radius_neighborhood() {
        let graph = generators::path(7); // 0-1-2-3-4-5-6
        let mut injector = FaultInjector::new(&graph);
        let mut rng = StdRng::seed_from_u64(5);
        let mut victims: Vec<usize> = injector
            .select_victims(
                &graph,
                FaultModel::Ball {
                    center: BallCenter::Node(3),
                    radius: 2,
                },
                &mut rng,
            )
            .iter()
            .map(|p| p.index())
            .collect();
        victims.sort_unstable();
        assert_eq!(victims, vec![1, 2, 3, 4, 5]);
        // Radius 0 corrupts only the center; a hub center on a star is the
        // max-degree process.
        let star = generators::star(5);
        let mut star_injector = FaultInjector::new(&star);
        let victims = star_injector.select_victims(
            &star,
            FaultModel::Ball {
                center: BallCenter::Hub,
                radius: 0,
            },
            &mut rng,
        );
        assert_eq!(victims, &[NodeId::new(0)]);
    }

    #[test]
    fn stuck_at_enables_more_guards_than_it_must() {
        // On a silent ring, a StuckAt injection must leave at least the
        // victim's neighborhood churning: the candidate search maximizes
        // enabled guards, so *some* guard is enabled afterwards unless no
        // candidate can enable any (impossible here: any value below the
        // minimum enables both neighbors).
        let graph = generators::ring(12);
        let mut sim = Simulation::with_config(
            &graph,
            MinValue,
            Synchronous,
            vec![500; 12],
            7,
            SimOptions::default(),
        );
        assert_eq!(sim.enabled_set().count(), 0, "uniformly 500 is silent");
        let mut injector = FaultInjector::new(&graph);
        let mut rng = StdRng::seed_from_u64(11);
        let victims = injector
            .inject(&mut sim, FaultModel::StuckAt(FaultLoad::Count(1)), &mut rng)
            .to_vec();
        assert_eq!(victims.len(), 1);
        assert!(
            sim.enabled_set().count() >= 2,
            "the adversarial state enables the victim's neighbors"
        );
    }

    #[test]
    fn fault_plans_sort_events_and_build_schedules() {
        let model = FaultModel::Uniform(FaultLoad::Count(1));
        let plan = FaultPlan::new(vec![
            FaultEvent { at_step: 9, model },
            FaultEvent { at_step: 2, model },
        ]);
        assert_eq!(plan.events()[0].at_step, 2);
        assert_eq!(plan.injection_count(), 2);
        assert_eq!(FaultPlan::single(model).events()[0].at_step, 0);
        assert_eq!(FaultPlan::delayed(model, 7).events()[0].at_step, 7);
        let periodic = FaultPlan::periodic(model, 10, 3);
        let offsets: Vec<u64> = periodic.events().iter().map(|e| e.at_step).collect();
        assert_eq!(offsets, vec![0, 10, 20]);
    }

    #[test]
    fn run_fault_plan_records_injections_and_recovery() {
        let graph = generators::ring(10);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 21, SimOptions::default());
        sim.run_until_silent(10_000);
        let mut injector = FaultInjector::new(&graph);
        let mut rng = StdRng::seed_from_u64(8);
        let plan = FaultPlan::periodic(FaultModel::Uniform(FaultLoad::Fraction(0.3)), 3, 2);
        let telemetry = run_fault_plan(&mut sim, &plan, &mut injector, &mut rng, 10_000);
        assert_eq!(telemetry.injections.len(), 2);
        assert!(telemetry.injections[0].victims >= 1);
        assert!(telemetry.recovered, "MinValue quiesces after faults");
        assert!(telemetry.legitimate);
        assert!(telemetry.recovery_rounds.is_some());
        // The curve ends in a fully-available, quiet round.
        let last = telemetry.rounds.last().expect("at least one round");
        assert!(last.legitimate);
        // Rounds are strictly increasing and reads are attributed per round.
        assert!(telemetry.rounds.windows(2).all(|w| w[0].round < w[1].round));
        let curve_reads: u64 = telemetry.rounds.iter().map(|r| r.read_operations).sum();
        assert!(curve_reads > 0, "the repair wave reads neighbors");
    }

    #[test]
    fn run_fault_plan_respects_the_step_budget() {
        let graph = generators::ring(8);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 2, SimOptions::default());
        sim.run_until_silent(1_000);
        let mut injector = FaultInjector::new(&graph);
        let mut rng = StdRng::seed_from_u64(13);
        // Re-inject every step forever-ish: the budget must end the run.
        let plan = FaultPlan::periodic(FaultModel::Uniform(FaultLoad::Count(2)), 1, 1_000);
        let telemetry = run_fault_plan(&mut sim, &plan, &mut injector, &mut rng, 50);
        assert!(!telemetry.recovered);
        assert_eq!(telemetry.recovery_rounds, None);
        assert!(telemetry.steps <= 51);
    }

    #[test]
    fn model_and_load_labels_are_compact() {
        assert_eq!(
            FaultModel::Uniform(FaultLoad::Count(3)).to_string(),
            "uniform(3)"
        );
        assert_eq!(
            FaultModel::DegreeTargeted(FaultLoad::Fraction(0.1)).to_string(),
            "hubs(10%)"
        );
        assert_eq!(
            FaultModel::Ball {
                center: BallCenter::Hub,
                radius: 2
            }
            .to_string(),
            "ball(hub,r2)"
        );
        assert_eq!(
            FaultModel::StuckAt(FaultLoad::Fraction(0.25)).to_string(),
            "stuck(25%)"
        );
        assert_eq!(BallCenter::Random.to_string(), "rand");
        assert_eq!(BallCenter::Node(4).to_string(), "p4");
    }
}

//! Transient fault injection.
//!
//! Self-stabilization promises recovery from *any* transient fault: a fault
//! may overwrite the variables of any subset of processes with arbitrary
//! values. The experiment E9 uses [`inject_random_faults`] to corrupt a
//! stabilized execution and measure the re-stabilization cost of the
//! 1-efficient protocols against their Δ-efficient baselines.
//!
//! Every injection goes through [`Simulation::set_state`], which refreshes
//! the executor's cached communication configuration and marks the victim
//! and its whole neighborhood dirty — so the incremental enabled set is
//! correct again at the next step even though a fault changes state outside
//! the normal activation path.

use rand::seq::SliceRandom;
use rand::RngCore;
use selfstab_graph::{Graph, NodeId};

use crate::executor::Simulation;
use crate::protocol::Protocol;
use crate::scheduler::Scheduler;

/// Overwrites the state of `count` distinct random processes with freshly
/// sampled arbitrary states, returning the identifiers of the corrupted
/// processes.
///
/// `count` is clamped to the number of processes.
pub fn inject_random_faults<P, S, R>(
    sim: &mut Simulation<'_, P, S>,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId>
where
    P: Protocol,
    S: Scheduler,
    R: RngCore,
{
    let graph = sim.graph();
    let mut victims: Vec<NodeId> = graph.nodes().collect();
    victims.shuffle(rng);
    victims.truncate(count.min(graph.node_count()));
    let states: Vec<(NodeId, P::State)> = victims
        .iter()
        .map(|&p| (p, sim.protocol().arbitrary_state(graph, p, rng)))
        .collect();
    for (p, state) in states {
        sim.set_state(p, state);
    }
    victims
}

/// Overwrites the state of the given processes with freshly sampled
/// arbitrary states.
pub fn inject_faults_at<P, S, R>(sim: &mut Simulation<'_, P, S>, victims: &[NodeId], rng: &mut R)
where
    P: Protocol,
    S: Scheduler,
    R: RngCore,
{
    let states: Vec<(NodeId, P::State)> = victims
        .iter()
        .map(|&p| (p, sim.protocol().arbitrary_state(sim.graph(), p, rng)))
        .collect();
    for (p, state) in states {
        sim.set_state(p, state);
    }
}

/// A fault scenario for experiment definitions: how many processes to
/// corrupt, expressed as an absolute count or as a fraction of `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultLoad {
    /// Corrupt exactly this many processes.
    Count(usize),
    /// Corrupt `ceil(fraction * n)` processes.
    Fraction(f64),
}

impl FaultLoad {
    /// Resolves the scenario to a process count for a graph of `n`
    /// processes (at least 1 when the graph is non-empty and the load is
    /// non-zero).
    pub fn resolve(&self, graph: &Graph) -> usize {
        let n = graph.node_count();
        match *self {
            FaultLoad::Count(c) => c.min(n),
            FaultLoad::Fraction(f) => {
                if n == 0 || f <= 0.0 {
                    0
                } else {
                    ((f * n as f64).ceil() as usize).clamp(1, n)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimOptions;
    use crate::scheduler::Synchronous;
    use crate::view::NeighborView;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use selfstab_graph::generators;
    use selfstab_graph::Port;

    struct MinValue;

    impl Protocol for MinValue {
        type State = u32;
        type Comm = u32;

        fn name(&self) -> &'static str {
            "min-value"
        }

        fn arbitrary_state(&self, _graph: &Graph, _p: NodeId, rng: &mut dyn RngCore) -> u32 {
            rng.gen_range(0..1000)
        }

        fn comm(&self, _p: NodeId, state: &u32) -> u32 {
            *state
        }

        fn is_enabled(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
        ) -> bool {
            (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
        }

        fn activate(
            &self,
            graph: &Graph,
            p: NodeId,
            state: &u32,
            view: &NeighborView<'_, u32>,
            _rng: &mut dyn RngCore,
        ) -> Option<u32> {
            let min = (0..graph.degree(p))
                .map(|i| *view.read(Port::new(i)))
                .min()
                .unwrap_or(*state);
            (min < *state).then_some(min)
        }

        fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
            32
        }

        fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
            let min = config.iter().min().copied().unwrap_or(0);
            config.iter().all(|&v| v == min)
        }
    }

    #[test]
    fn faults_corrupt_and_recovery_follows() {
        let graph = generators::ring(8);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 5, SimOptions::default());
        sim.run_until_silent(1000);
        assert!(sim.is_legitimate());

        let mut rng = StdRng::seed_from_u64(99);
        let victims = inject_random_faults(&mut sim, 3, &mut rng);
        assert_eq!(victims.len(), 3);
        // MinValue is not actually self-stabilizing (a fault can lower the
        // minimum), but it always re-reaches a silent legitimate point of
        // its own spec, which is what we exercise here.
        let report = sim.run_until_silent(1000);
        assert!(report.silent);
        assert!(report.legitimate);
    }

    #[test]
    fn fault_count_is_clamped() {
        let graph = generators::path(4);
        let mut sim = Simulation::new(&graph, MinValue, Synchronous, 6, SimOptions::default());
        let mut rng = StdRng::seed_from_u64(1);
        let victims = inject_random_faults(&mut sim, 100, &mut rng);
        assert_eq!(victims.len(), 4);
        let mut unique = victims.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4, "victims are distinct");
    }

    #[test]
    fn inject_at_specific_processes() {
        let graph = generators::path(5);
        let mut sim = Simulation::with_config(
            &graph,
            MinValue,
            Synchronous,
            vec![7; 5],
            3,
            SimOptions::default(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        inject_faults_at(&mut sim, &[NodeId::new(2)], &mut rng);
        // Exactly the targeted process may have changed.
        let changed: Vec<usize> = sim
            .config()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 7)
            .map(|(i, _)| i)
            .collect();
        assert!(changed.is_empty() || changed == vec![2]);
    }

    #[test]
    fn fault_load_resolution() {
        let graph = generators::ring(10);
        assert_eq!(FaultLoad::Count(3).resolve(&graph), 3);
        assert_eq!(FaultLoad::Count(30).resolve(&graph), 10);
        assert_eq!(FaultLoad::Fraction(0.25).resolve(&graph), 3);
        assert_eq!(FaultLoad::Fraction(0.0).resolve(&graph), 0);
        assert_eq!(FaultLoad::Fraction(0.01).resolve(&graph), 1);
        assert_eq!(FaultLoad::Fraction(2.0).resolve(&graph), 10);
    }
}

//! Shared-register, guarded-action computational model for self-stabilizing
//! protocols.
//!
//! This crate implements the execution model of Section 2 of *Communication
//! Efficiency in Self-stabilizing Silent Protocols* (Devismes, Masuzawa,
//! Tixeuil):
//!
//! * processes hold **communication variables** (readable by neighbors) and
//!   **internal variables** (private); a [`Protocol`]
//!   describes one local algorithm executed by every process,
//! * a **scheduler** (daemon) picks a non-empty subset of processes at each
//!   step; selected processes execute one enabled action atomically, all
//!   reading the *pre-step* configuration ([`scheduler`]),
//! * **rounds** capture the execution rate of the slowest process,
//! * every neighbor read goes through a [`NeighborView`]
//!   that records which ports were read, so that the paper's communication
//!   measures (k-efficiency, ♦-(x,k)-stability, communication complexity) are
//!   *measured* from executions rather than assumed ([`stats`]),
//! * [`Simulation`] drives executions from arbitrary
//!   (possibly corrupted) configurations, detects silence and legitimacy, and
//!   supports transient-fault injection ([`faults`]),
//! * the executor is **incremental**: it caches the communication
//!   configuration and maintains the [`EnabledSet`]
//!   across steps, re-evaluating a guard only when the process or a
//!   neighbor changed — `O(changes·Δ)` per step instead of `O(n·Δ)` (see
//!   the [`executor`] module documentation),
//! * [`telemetry`] streams per-step records to disk in a compact binary
//!   format, replays recorded runs with step-by-step verification, and
//!   exposes per-phase runtime metrics — all strictly
//!   pay-for-what-you-use.
//!
//! # Example
//!
//! ```
//! use selfstab_graph::generators;
//! use selfstab_runtime::executor::{SimOptions, Simulation};
//! use selfstab_runtime::protocol::Protocol;
//! use selfstab_runtime::scheduler::DistributedRandom;
//! use selfstab_runtime::view::NeighborView;
//! use rand::RngCore;
//!
//! /// A toy silent protocol: every process copies the minimum of its own
//! /// value and its neighbors' values (converges to the global minimum).
//! struct MinProtocol;
//!
//! impl Protocol for MinProtocol {
//!     type State = u32;
//!     type Comm = u32;
//!     fn name(&self) -> &'static str { "min" }
//!     fn arbitrary_state(
//!         &self,
//!         _graph: &selfstab_graph::Graph,
//!         p: selfstab_graph::NodeId,
//!         _rng: &mut dyn RngCore,
//!     ) -> u32 { p.index() as u32 + 1 }
//!     fn comm(&self, _p: selfstab_graph::NodeId, state: &u32) -> u32 { *state }
//!     fn is_enabled(
//!         &self,
//!         graph: &selfstab_graph::Graph,
//!         p: selfstab_graph::NodeId,
//!         state: &u32,
//!         view: &NeighborView<'_, u32>,
//!     ) -> bool {
//!         (0..graph.degree(p)).any(|i| view.read(selfstab_graph::Port::new(i)) < state)
//!     }
//!     fn activate(
//!         &self,
//!         graph: &selfstab_graph::Graph,
//!         p: selfstab_graph::NodeId,
//!         state: &u32,
//!         view: &NeighborView<'_, u32>,
//!         _rng: &mut dyn RngCore,
//!     ) -> Option<u32> {
//!         let min = (0..graph.degree(p))
//!             .map(|i| *view.read(selfstab_graph::Port::new(i)))
//!             .min()
//!             .unwrap_or(*state);
//!         (min < *state).then_some(min)
//!     }
//!     fn comm_bits(&self, _g: &selfstab_graph::Graph, _p: selfstab_graph::NodeId) -> u64 { 32 }
//!     fn state_bits(&self, _g: &selfstab_graph::Graph, _p: selfstab_graph::NodeId) -> u64 { 32 }
//!     fn is_legitimate(&self, graph: &selfstab_graph::Graph, config: &[u32]) -> bool {
//!         let min = config.iter().min().copied().unwrap_or(0);
//!         config.iter().all(|&v| v == min) && graph.node_count() == config.len()
//!     }
//! }
//!
//! let graph = generators::ring(6);
//! let mut sim = Simulation::new(&graph, MinProtocol, DistributedRandom::new(0.5), 42, SimOptions::default());
//! let report = sim.run_until_silent(10_000);
//! assert!(report.silent);
//! assert!(sim.is_legitimate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enabled;
pub mod executor;
pub mod faults;
pub mod guarded;
pub mod kernel;
pub mod probes;
pub mod protocol;
pub mod scheduler;
pub mod soa;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod view;

pub use enabled::EnabledSet;
pub use executor::{run_cell, RunReport, SimOptions, Simulation};
pub use faults::{
    run_fault_plan, BallCenter, FaultInjector, FaultLoad, FaultModel, FaultPlan, RecoveryTelemetry,
};
pub use kernel::EnabledWriter;
pub use protocol::Protocol;
pub use scheduler::Scheduler;
pub use soa::{SoaState, StateColumns, StateStore};
pub use stats::RunStats;
pub use telemetry::{
    FileSink, MemorySink, NullSink, ReplayScheduler, TraceFileReader, TraceFooter, TraceHeader,
    TraceSink,
};
pub use trace::{StepRecord, Trace};
pub use view::{GatherBuffer, NeighborView};

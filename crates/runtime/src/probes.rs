//! Thread-role probes for allocation tests.
//!
//! The zero-allocation integration test installs a counting global
//! allocator; with the sharded executor it must distinguish allocations on
//! *step worker threads* (which the hot path forbids) from allocations on
//! the coordinating thread (which legitimately builds the per-step task
//! list when dispatching work to a thread pool). The executor marks each
//! worker thread for the duration of its claim loop, and the allocator asks
//! [`is_step_worker`] when deciding whether to count.
//!
//! The flag is a `const`-initialized `thread_local` `Cell`, so neither
//! marking a thread nor querying the flag allocates — a hard requirement,
//! since [`is_step_worker`] is called from inside `GlobalAlloc::alloc`.

use std::cell::Cell;

thread_local! {
    static IS_STEP_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a sharded-executor step worker.
pub(crate) fn enter_step_worker() {
    IS_STEP_WORKER.with(|flag| flag.set(true));
}

/// Clears the step-worker mark before the thread runs its teardown (thread
/// exit may touch the allocator, and those allocations are not the hot
/// path's).
pub(crate) fn exit_step_worker() {
    IS_STEP_WORKER.with(|flag| flag.set(false));
}

/// Whether the current thread is executing sharded step work right now.
///
/// Safe to call from a global allocator: uses `try_with` so a query during
/// thread-local teardown answers `false` instead of panicking.
pub fn is_step_worker() -> bool {
    IS_STEP_WORKER.try_with(|flag| flag.get()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_mark_is_per_thread() {
        assert!(!is_step_worker());
        enter_step_worker();
        assert!(is_step_worker());
        let seen_on_other_thread = std::thread::spawn(is_step_worker)
            .join()
            .expect("probe thread");
        assert!(
            !seen_on_other_thread,
            "the mark must not leak across threads"
        );
        exit_step_worker();
        assert!(!is_step_worker());
    }
}

//! Read-tracked views of a process's neighborhood.

use std::cell::RefCell;

use selfstab_graph::{Graph, NodeId, Port};

/// The window through which a process observes its neighbors' communication
/// states during one activation.
///
/// Every call to [`NeighborView::read`] (or [`NeighborView::try_read`]) is
/// recorded; the executor collects the recorded port set after the
/// activation, which is how the paper's communication measures
/// (k-efficiency, Definition 4; ♦-(x,k)-stability, Definition 9) are
/// evaluated on actual executions.
///
/// A view can optionally *restrict* the readable ports. Restrictions are used
/// by the impossibility experiments (Theorems 1 and 2) to model protocols
/// that have committed to never read some neighbor again: a restricted port
/// behaves as if the neighbor did not exist ([`NeighborView::try_read`]
/// returns `None`).
///
/// Views are built on the executor's hot path — once per guard evaluation
/// and once per activation — so constructing one performs **no allocation**
/// in the common (unrestricted) case: the view borrows the graph's CSR
/// neighbor slice and the communication snapshot instead of copying
/// per-neighbor references, and the executor threads one persistent read-log
/// buffer through every tracked view ([`NeighborView::with_log_buffer`] /
/// [`NeighborView::into_log_buffer`]) so recording reads never grows a
/// fresh `Vec` in steady state.
#[derive(Debug)]
pub struct NeighborView<'a, C> {
    /// The observed process's neighbors, indexed by port (borrowed from the
    /// graph's flat CSR neighbor array).
    neighbors: &'a [NodeId],
    /// Communication snapshot of every process, indexed by [`NodeId`].
    comm_snapshot: &'a [C],
    /// `Some(allowed)` with `allowed[i] == false` marks a restricted port;
    /// `None` means every port is readable (no allocation).
    allowed: Option<Vec<bool>>,
    /// Log of every read operation performed during the current activation,
    /// in order, repeats included.
    reads: RefCell<Vec<Port>>,
    /// Whether reads are recorded (enabledness checks are not charged).
    tracking: bool,
}

impl<'a, C> NeighborView<'a, C> {
    /// Builds the view of process `p` from a snapshot of every process's
    /// communication state (indexed by [`NodeId`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `comm_snapshot` does not cover the
    /// graph.
    pub fn from_snapshot(
        graph: &'a Graph,
        p: NodeId,
        comm_snapshot: &'a [C],
        tracking: bool,
    ) -> Self {
        Self::with_log_buffer(graph, p, comm_snapshot, tracking, Vec::new())
    }

    /// Like [`NeighborView::from_snapshot`], but the read log reuses
    /// `log_buffer`'s allocation (the buffer is cleared first). The executor
    /// recovers the buffer with [`NeighborView::into_log_buffer`] after the
    /// activation, so its capacity survives across steps.
    pub fn with_log_buffer(
        graph: &'a Graph,
        p: NodeId,
        comm_snapshot: &'a [C],
        tracking: bool,
        mut log_buffer: Vec<Port>,
    ) -> Self {
        assert!(
            comm_snapshot.len() >= graph.node_count(),
            "communication snapshot must cover the graph"
        );
        log_buffer.clear();
        NeighborView {
            neighbors: graph.neighbor_slice(p),
            comm_snapshot,
            allowed: None,
            reads: RefCell::new(log_buffer),
            tracking,
        }
    }

    /// Consumes the view and returns the read-log buffer (with the reads of
    /// this activation still in it), so its allocation can be reused.
    pub fn into_log_buffer(self) -> Vec<Port> {
        self.reads.into_inner()
    }

    /// Restricts this view so that only the listed ports are readable.
    ///
    /// Ports not mentioned behave as if the corresponding neighbor did not
    /// exist: [`NeighborView::try_read`] returns `None`. This allocates the
    /// restriction mask; it is only used on the (cold) impossibility
    /// experiment paths, never by the default executor configuration.
    #[must_use]
    pub fn restricted_to(mut self, allowed_ports: &[Port]) -> Self {
        let mut allowed = vec![false; self.neighbors.len()];
        for port in allowed_ports {
            if port.index() < allowed.len() {
                allowed[port.index()] = true;
            }
        }
        self.allowed = Some(allowed);
        self
    }

    /// Degree of the observed process (number of ports).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns `true` when `port` may be read under the current restriction.
    pub fn is_readable(&self, port: Port) -> bool {
        port.index() < self.neighbors.len()
            && self
                .allowed
                .as_ref()
                .is_none_or(|allowed| allowed[port.index()])
    }

    /// Reads the communication state of the neighbor behind `port`,
    /// recording the read.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range or restricted; protocols that may
    /// run under read restrictions must use [`NeighborView::try_read`].
    pub fn read(&self, port: Port) -> &C {
        self.try_read(port)
            .unwrap_or_else(|| panic!("read of restricted or out-of-range port {port}"))
    }

    /// Reads the communication state of the neighbor behind `port`, or
    /// returns `None` when the port is restricted or out of range. Successful
    /// reads are recorded.
    pub fn try_read(&self, port: Port) -> Option<&C> {
        if !self.is_readable(port) {
            return None;
        }
        let q = self.neighbors[port.index()];
        if self.tracking {
            self.reads.borrow_mut().push(port);
        }
        Some(&self.comm_snapshot[q.index()])
    }

    /// The distinct ports read so far during this activation, in first-read
    /// order (allocates; the executor uses
    /// [`NeighborView::collect_distinct_reads`] with a reused buffer
    /// instead).
    pub fn reads(&self) -> Vec<Port> {
        let mut distinct = Vec::new();
        self.collect_distinct_reads(&mut distinct);
        distinct
    }

    /// Writes the distinct ports read so far, in first-read order, into
    /// `out` (cleared first). Allocation-free once `out` has capacity Δ.
    pub fn collect_distinct_reads(&self, out: &mut Vec<Port>) {
        out.clear();
        for &port in self.reads.borrow().iter() {
            if !out.contains(&port) {
                out.push(port);
            }
        }
    }

    /// Total number of read operations performed (including repeated reads of
    /// the same port).
    pub fn read_operations(&self) -> usize {
        self.reads.borrow().len()
    }

    /// Clears the recorded reads (used when a view is reused across the
    /// enabledness check and the activation).
    pub fn reset_reads(&self) {
        self.reads.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::generators;

    #[test]
    fn reads_are_recorded_in_order_and_deduplicated() {
        let graph = generators::star(4);
        let comms: Vec<u32> = vec![10, 11, 12, 13];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true);
        assert_eq!(view.degree(), 3);
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(*view.read(Port::new(0)), 11);
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(view.reads(), vec![Port::new(2), Port::new(0)]);
        assert_eq!(view.read_operations(), 3);
        view.reset_reads();
        assert!(view.reads().is_empty());
    }

    #[test]
    fn untracked_views_record_nothing() {
        let graph = generators::path(3);
        let comms: Vec<u32> = vec![0, 1, 2];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(1), &comms, false);
        let _ = view.read(Port::new(0));
        let _ = view.read(Port::new(1));
        assert!(view.reads().is_empty());
        assert_eq!(view.read_operations(), 0);
    }

    #[test]
    fn log_buffer_round_trips_and_keeps_capacity() {
        let graph = generators::path(3);
        let comms: Vec<u32> = vec![0, 1, 2];
        let mut buffer = Vec::with_capacity(8);
        let spare = buffer.spare_capacity_mut().len();
        let view = NeighborView::with_log_buffer(&graph, NodeId::new(1), &comms, true, buffer);
        let _ = view.read(Port::new(1));
        let _ = view.read(Port::new(1));
        let mut distinct = Vec::new();
        view.collect_distinct_reads(&mut distinct);
        assert_eq!(distinct, vec![Port::new(1)]);
        buffer = view.into_log_buffer();
        assert_eq!(buffer.len(), 2, "raw log keeps repeats");
        assert!(
            buffer.capacity() >= spare,
            "capacity survives the round trip"
        );
        // Reusing the buffer clears the previous activation's reads.
        let view = NeighborView::with_log_buffer(&graph, NodeId::new(0), &comms, true, buffer);
        assert_eq!(view.read_operations(), 0);
    }

    #[test]
    fn restriction_hides_ports() {
        let graph = generators::star(5);
        let comms: Vec<u32> = vec![0, 1, 2, 3, 4];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true)
            .restricted_to(&[Port::new(1), Port::new(3)]);
        assert!(view.is_readable(Port::new(1)));
        assert!(!view.is_readable(Port::new(0)));
        assert_eq!(view.try_read(Port::new(0)), None);
        assert_eq!(view.try_read(Port::new(1)), Some(&2));
        assert_eq!(view.reads(), vec![Port::new(1)]);
    }

    #[test]
    #[should_panic(expected = "restricted or out-of-range")]
    fn read_panics_on_restricted_port() {
        let graph = generators::path(2);
        let comms: Vec<u32> = vec![0, 1];
        let view =
            NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true).restricted_to(&[]);
        let _ = view.read(Port::new(0));
    }

    #[test]
    fn out_of_range_port_is_not_readable() {
        let graph = generators::path(2);
        let comms: Vec<u32> = vec![0, 1];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true);
        assert!(!view.is_readable(Port::new(5)));
        assert_eq!(view.try_read(Port::new(5)), None);
    }

    #[test]
    fn view_maps_ports_to_the_right_neighbors() {
        let graph = generators::ring(4);
        let comms: Vec<u32> = vec![100, 101, 102, 103];
        let p = NodeId::new(2);
        let view = NeighborView::from_snapshot(&graph, p, &comms, true);
        for (port, q) in graph.ports(p) {
            assert_eq!(*view.read(port), comms[q.index()]);
        }
    }
}

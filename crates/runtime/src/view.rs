//! Read-tracked views of a process's neighborhood.

use std::cell::{OnceCell, RefCell};
use std::fmt;

use selfstab_graph::{Graph, NodeId, Port};

/// Per-activation scratch for views over a columnar communication store.
///
/// When the simulation keeps its communication configuration in a
/// struct-of-arrays [`StateStore`](crate::StateStore), there is no contiguous
/// `&[C]` snapshot for a [`NeighborView`] to borrow. A gathered view instead
/// decodes each neighbor's communication state **lazily, on first read**,
/// into one of these cells (indexed by port) — so a 1-efficient protocol
/// still pays for one decode, not Δ. The buffer records which cells were
/// filled and [`GatherBuffer::reset`] clears exactly those, keeping the
/// per-activation cost `O(reads)` and allocation-free (cells store values
/// inline; the buffer is sized to the maximum degree once).
#[derive(Debug)]
pub struct GatherBuffer<C> {
    /// Lazily decoded neighbor communication states, indexed by port.
    cells: Vec<OnceCell<C>>,
    /// Ports whose cells were filled during the current activation.
    filled: RefCell<Vec<Port>>,
}

impl<C> GatherBuffer<C> {
    /// Creates a buffer able to serve views of processes with up to
    /// `max_degree` ports.
    #[must_use]
    pub fn new(max_degree: usize) -> Self {
        GatherBuffer {
            cells: (0..max_degree).map(|_| OnceCell::new()).collect(),
            filled: RefCell::new(Vec::with_capacity(max_degree)),
        }
    }

    /// Maximum degree this buffer can serve.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Clears every cell filled since the last reset (`O(filled)`, not
    /// `O(max_degree)`). Must be called between activations that reuse the
    /// buffer; the views themselves only borrow it.
    pub fn reset(&mut self) {
        let filled = self.filled.get_mut();
        for port in filled.drain(..) {
            self.cells[port.index()].take();
        }
    }
}

/// Where a view reads neighbor communication states from.
enum Snapshot<'a, C> {
    /// A contiguous snapshot of every process's communication state,
    /// indexed by [`NodeId`] (the array-of-structs layout).
    Slice(&'a [C]),
    /// Lazy per-port decode out of a columnar store: `fetch(q)` produces
    /// the communication state of process `q`, cached in `buffer` for the
    /// duration of the activation.
    Gathered {
        buffer: &'a GatherBuffer<C>,
        fetch: &'a dyn Fn(NodeId) -> C,
    },
}

/// The window through which a process observes its neighbors' communication
/// states during one activation.
///
/// Every call to [`NeighborView::read`] (or [`NeighborView::try_read`]) is
/// recorded; the executor collects the recorded port set after the
/// activation, which is how the paper's communication measures
/// (k-efficiency, Definition 4; ♦-(x,k)-stability, Definition 9) are
/// evaluated on actual executions.
///
/// A view can optionally *restrict* the readable ports. Restrictions are used
/// by the impossibility experiments (Theorems 1 and 2) to model protocols
/// that have committed to never read some neighbor again: a restricted port
/// behaves as if the neighbor did not exist ([`NeighborView::try_read`]
/// returns `None`).
///
/// Views are built on the executor's hot path — once per guard evaluation
/// and once per activation — so constructing one performs **no allocation**
/// in the common (unrestricted) case: the view borrows the graph's CSR
/// neighbor slice and either a contiguous communication snapshot
/// ([`NeighborView::from_snapshot`]) or a lazily-gathered one over a
/// columnar store ([`NeighborView::gathered`] + [`GatherBuffer`]), and the
/// executor threads one persistent read-log buffer through every tracked
/// view ([`NeighborView::with_log_buffer`] /
/// [`NeighborView::into_log_buffer`]) so recording reads never grows a
/// fresh `Vec` in steady state.
pub struct NeighborView<'a, C> {
    /// The observed process's neighbors, indexed by port (borrowed from the
    /// graph's flat CSR neighbor array).
    neighbors: &'a [NodeId],
    /// The communication source: a borrowed snapshot or a lazy gather.
    snapshot: Snapshot<'a, C>,
    /// `Some(allowed)` with `allowed[i] == false` marks a restricted port;
    /// `None` means every port is readable (no allocation).
    allowed: Option<Vec<bool>>,
    /// Log of every read operation performed during the current activation,
    /// in order, repeats included.
    reads: RefCell<Vec<Port>>,
    /// Whether reads are recorded (enabledness checks are not charged).
    tracking: bool,
}

impl<C: fmt::Debug> fmt::Debug for NeighborView<'_, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NeighborView")
            .field("neighbors", &self.neighbors)
            .field(
                "snapshot",
                &match self.snapshot {
                    Snapshot::Slice(_) => "slice",
                    Snapshot::Gathered { .. } => "gathered",
                },
            )
            .field("allowed", &self.allowed)
            .field("reads", &self.reads)
            .field("tracking", &self.tracking)
            .finish()
    }
}

impl<'a, C> NeighborView<'a, C> {
    /// Builds the view of process `p` from a snapshot of every process's
    /// communication state (indexed by [`NodeId`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `comm_snapshot` does not cover the
    /// graph.
    pub fn from_snapshot(
        graph: &'a Graph,
        p: NodeId,
        comm_snapshot: &'a [C],
        tracking: bool,
    ) -> Self {
        Self::with_log_buffer(graph, p, comm_snapshot, tracking, Vec::new())
    }

    /// Like [`NeighborView::from_snapshot`], but the read log reuses
    /// `log_buffer`'s allocation (the buffer is cleared first). The executor
    /// recovers the buffer with [`NeighborView::into_log_buffer`] after the
    /// activation, so its capacity survives across steps.
    pub fn with_log_buffer(
        graph: &'a Graph,
        p: NodeId,
        comm_snapshot: &'a [C],
        tracking: bool,
        log_buffer: Vec<Port>,
    ) -> Self {
        assert!(
            comm_snapshot.len() >= graph.node_count(),
            "communication snapshot must cover the graph"
        );
        Self::build(
            graph,
            p,
            Snapshot::Slice(comm_snapshot),
            tracking,
            log_buffer,
        )
    }

    /// Builds the view of process `p` over a **columnar** communication
    /// store: `fetch(q)` decodes the communication state of process `q`,
    /// lazily on first read of the corresponding port, cached in `buffer`.
    ///
    /// The caller must [`GatherBuffer::reset`] the buffer between
    /// activations that reuse it.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `buffer` is smaller than `p`'s
    /// degree.
    pub fn gathered(
        graph: &'a Graph,
        p: NodeId,
        buffer: &'a GatherBuffer<C>,
        fetch: &'a dyn Fn(NodeId) -> C,
        tracking: bool,
    ) -> Self {
        Self::gathered_with_log_buffer(graph, p, buffer, fetch, tracking, Vec::new())
    }

    /// Like [`NeighborView::gathered`], with a reused read-log buffer
    /// (the gathered counterpart of [`NeighborView::with_log_buffer`]).
    pub fn gathered_with_log_buffer(
        graph: &'a Graph,
        p: NodeId,
        buffer: &'a GatherBuffer<C>,
        fetch: &'a dyn Fn(NodeId) -> C,
        tracking: bool,
        log_buffer: Vec<Port>,
    ) -> Self {
        assert!(
            buffer.capacity() >= graph.degree(p),
            "gather buffer must cover the degree of the observed process"
        );
        Self::build(
            graph,
            p,
            Snapshot::Gathered { buffer, fetch },
            tracking,
            log_buffer,
        )
    }

    fn build(
        graph: &'a Graph,
        p: NodeId,
        snapshot: Snapshot<'a, C>,
        tracking: bool,
        mut log_buffer: Vec<Port>,
    ) -> Self {
        log_buffer.clear();
        NeighborView {
            neighbors: graph.neighbor_slice(p),
            snapshot,
            allowed: None,
            reads: RefCell::new(log_buffer),
            tracking,
        }
    }

    /// Consumes the view and returns the read-log buffer (with the reads of
    /// this activation still in it), so its allocation can be reused.
    pub fn into_log_buffer(self) -> Vec<Port> {
        self.reads.into_inner()
    }

    /// Restricts this view so that only the listed ports are readable.
    ///
    /// Ports not mentioned behave as if the corresponding neighbor did not
    /// exist: [`NeighborView::try_read`] returns `None`. This allocates the
    /// restriction mask; it is only used on the (cold) impossibility
    /// experiment paths, never by the default executor configuration.
    #[must_use]
    pub fn restricted_to(mut self, allowed_ports: &[Port]) -> Self {
        let mut allowed = vec![false; self.neighbors.len()];
        for port in allowed_ports {
            if port.index() < allowed.len() {
                allowed[port.index()] = true;
            }
        }
        self.allowed = Some(allowed);
        self
    }

    /// Degree of the observed process (number of ports).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns `true` when `port` may be read under the current restriction.
    pub fn is_readable(&self, port: Port) -> bool {
        port.index() < self.neighbors.len()
            && self
                .allowed
                .as_ref()
                .is_none_or(|allowed| allowed[port.index()])
    }

    /// Reads the communication state of the neighbor behind `port`,
    /// recording the read.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range or restricted; protocols that may
    /// run under read restrictions must use [`NeighborView::try_read`].
    pub fn read(&self, port: Port) -> &C {
        self.try_read(port)
            .unwrap_or_else(|| panic!("read of restricted or out-of-range port {port}"))
    }

    /// Reads the communication state of the neighbor behind `port`, or
    /// returns `None` when the port is restricted or out of range. Successful
    /// reads are recorded.
    pub fn try_read(&self, port: Port) -> Option<&C> {
        if !self.is_readable(port) {
            return None;
        }
        let q = self.neighbors[port.index()];
        if self.tracking {
            self.reads.borrow_mut().push(port);
        }
        match &self.snapshot {
            Snapshot::Slice(comm) => Some(&comm[q.index()]),
            Snapshot::Gathered { buffer, fetch } => {
                Some(buffer.cells[port.index()].get_or_init(|| {
                    buffer.filled.borrow_mut().push(port);
                    fetch(q)
                }))
            }
        }
    }

    /// The distinct ports read so far during this activation, in first-read
    /// order (allocates; the executor uses
    /// [`NeighborView::collect_distinct_reads`] with a reused buffer
    /// instead).
    pub fn reads(&self) -> Vec<Port> {
        let mut distinct = Vec::new();
        self.collect_distinct_reads(&mut distinct);
        distinct
    }

    /// Writes the distinct ports read so far, in first-read order, into
    /// `out` (cleared first). Allocation-free once `out` has capacity Δ.
    pub fn collect_distinct_reads(&self, out: &mut Vec<Port>) {
        out.clear();
        for &port in self.reads.borrow().iter() {
            if !out.contains(&port) {
                out.push(port);
            }
        }
    }

    /// Total number of read operations performed (including repeated reads of
    /// the same port).
    pub fn read_operations(&self) -> usize {
        self.reads.borrow().len()
    }

    /// Clears the recorded reads (used when a view is reused across the
    /// enabledness check and the activation).
    pub fn reset_reads(&self) {
        self.reads.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::generators;

    #[test]
    fn reads_are_recorded_in_order_and_deduplicated() {
        let graph = generators::star(4);
        let comms: Vec<u32> = vec![10, 11, 12, 13];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true);
        assert_eq!(view.degree(), 3);
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(*view.read(Port::new(0)), 11);
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(view.reads(), vec![Port::new(2), Port::new(0)]);
        assert_eq!(view.read_operations(), 3);
        view.reset_reads();
        assert!(view.reads().is_empty());
    }

    #[test]
    fn untracked_views_record_nothing() {
        let graph = generators::path(3);
        let comms: Vec<u32> = vec![0, 1, 2];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(1), &comms, false);
        let _ = view.read(Port::new(0));
        let _ = view.read(Port::new(1));
        assert!(view.reads().is_empty());
        assert_eq!(view.read_operations(), 0);
    }

    #[test]
    fn log_buffer_round_trips_and_keeps_capacity() {
        let graph = generators::path(3);
        let comms: Vec<u32> = vec![0, 1, 2];
        let mut buffer = Vec::with_capacity(8);
        let spare = buffer.spare_capacity_mut().len();
        let view = NeighborView::with_log_buffer(&graph, NodeId::new(1), &comms, true, buffer);
        let _ = view.read(Port::new(1));
        let _ = view.read(Port::new(1));
        let mut distinct = Vec::new();
        view.collect_distinct_reads(&mut distinct);
        assert_eq!(distinct, vec![Port::new(1)]);
        buffer = view.into_log_buffer();
        assert_eq!(buffer.len(), 2, "raw log keeps repeats");
        assert!(
            buffer.capacity() >= spare,
            "capacity survives the round trip"
        );
        // Reusing the buffer clears the previous activation's reads.
        let view = NeighborView::with_log_buffer(&graph, NodeId::new(0), &comms, true, buffer);
        assert_eq!(view.read_operations(), 0);
    }

    #[test]
    fn restriction_hides_ports() {
        let graph = generators::star(5);
        let comms: Vec<u32> = vec![0, 1, 2, 3, 4];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true)
            .restricted_to(&[Port::new(1), Port::new(3)]);
        assert!(view.is_readable(Port::new(1)));
        assert!(!view.is_readable(Port::new(0)));
        assert_eq!(view.try_read(Port::new(0)), None);
        assert_eq!(view.try_read(Port::new(1)), Some(&2));
        assert_eq!(view.reads(), vec![Port::new(1)]);
    }

    #[test]
    #[should_panic(expected = "restricted or out-of-range")]
    fn read_panics_on_restricted_port() {
        let graph = generators::path(2);
        let comms: Vec<u32> = vec![0, 1];
        let view =
            NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true).restricted_to(&[]);
        let _ = view.read(Port::new(0));
    }

    #[test]
    fn out_of_range_port_is_not_readable() {
        let graph = generators::path(2);
        let comms: Vec<u32> = vec![0, 1];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true);
        assert!(!view.is_readable(Port::new(5)));
        assert_eq!(view.try_read(Port::new(5)), None);
    }

    #[test]
    fn view_maps_ports_to_the_right_neighbors() {
        let graph = generators::ring(4);
        let comms: Vec<u32> = vec![100, 101, 102, 103];
        let p = NodeId::new(2);
        let view = NeighborView::from_snapshot(&graph, p, &comms, true);
        for (port, q) in graph.ports(p) {
            assert_eq!(*view.read(port), comms[q.index()]);
        }
    }

    #[test]
    fn gathered_view_fetches_lazily_and_caches() {
        use std::cell::Cell;
        let graph = generators::star(4);
        let comms: Vec<u32> = vec![10, 11, 12, 13];
        let buffer = GatherBuffer::new(graph.max_degree());
        let fetches = Cell::new(0usize);
        let fetch = |q: NodeId| {
            fetches.set(fetches.get() + 1);
            comms[q.index()]
        };
        let view = NeighborView::gathered(&graph, NodeId::new(0), &buffer, &fetch, true);
        assert_eq!(fetches.get(), 0, "construction decodes nothing");
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(fetches.get(), 1, "repeat reads hit the cached cell");
        assert_eq!(*view.read(Port::new(0)), 11);
        assert_eq!(fetches.get(), 2);
        assert_eq!(view.reads(), vec![Port::new(2), Port::new(0)]);
        assert_eq!(view.read_operations(), 3);
    }

    #[test]
    fn gather_buffer_reset_clears_only_filled_cells() {
        let graph = generators::ring(6);
        let comms: Vec<u32> = (0..6).collect();
        let mut buffer = GatherBuffer::new(graph.max_degree());
        let fetch = |q: NodeId| comms[q.index()];
        {
            let view = NeighborView::gathered(&graph, NodeId::new(2), &buffer, &fetch, false);
            assert_eq!(
                *view.read(Port::new(0)),
                comms[graph.neighbor_slice(NodeId::new(2))[0].index()]
            );
        }
        buffer.reset();
        // After reset the next view must re-fetch, observing new values.
        let doubled: Vec<u32> = comms.iter().map(|v| v * 2).collect();
        let fetch2 = |q: NodeId| doubled[q.index()];
        let view = NeighborView::gathered(&graph, NodeId::new(2), &buffer, &fetch2, false);
        let q0 = graph.neighbor_slice(NodeId::new(2))[0];
        assert_eq!(*view.read(Port::new(0)), doubled[q0.index()]);
    }

    #[test]
    #[should_panic(expected = "gather buffer must cover")]
    fn undersized_gather_buffer_is_rejected() {
        let graph = generators::star(5);
        let buffer: GatherBuffer<u32> = GatherBuffer::new(1);
        let fetch = |_q: NodeId| 0u32;
        let _ = NeighborView::gathered(&graph, NodeId::new(0), &buffer, &fetch, false);
    }
}

//! Read-tracked views of a process's neighborhood.

use std::cell::RefCell;

use selfstab_graph::{Graph, NodeId, Port};

/// The window through which a process observes its neighbors' communication
/// states during one activation.
///
/// Every call to [`NeighborView::read`] (or [`NeighborView::try_read`]) is
/// recorded; the executor collects the recorded port set after the
/// activation, which is how the paper's communication measures
/// (k-efficiency, Definition 4; ♦-(x,k)-stability, Definition 9) are
/// evaluated on actual executions.
///
/// A view can optionally *restrict* the readable ports. Restrictions are used
/// by the impossibility experiments (Theorems 1 and 2) to model protocols
/// that have committed to never read some neighbor again: a restricted port
/// behaves as if the neighbor did not exist ([`NeighborView::try_read`]
/// returns `None`).
#[derive(Debug)]
pub struct NeighborView<'a, C> {
    /// Communication states of the neighbors, indexed by port.
    neighbor_comms: Vec<&'a C>,
    /// `allowed[i] == false` marks a restricted port.
    allowed: Vec<bool>,
    /// Ports read so far during the current activation.
    reads: RefCell<Vec<Port>>,
    /// Whether reads are recorded (enabledness checks are not charged).
    tracking: bool,
}

impl<'a, C> NeighborView<'a, C> {
    /// Builds the view of process `p` from a snapshot of every process's
    /// communication state (indexed by [`NodeId`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `comm_snapshot` does not cover the
    /// graph.
    pub fn from_snapshot(graph: &Graph, p: NodeId, comm_snapshot: &'a [C], tracking: bool) -> Self {
        let neighbor_comms: Vec<&C> = graph
            .neighbors(p)
            .map(|q| &comm_snapshot[q.index()])
            .collect();
        let degree = neighbor_comms.len();
        NeighborView {
            neighbor_comms,
            allowed: vec![true; degree],
            reads: RefCell::new(Vec::new()),
            tracking,
        }
    }

    /// Restricts this view so that only the listed ports are readable.
    ///
    /// Ports not mentioned behave as if the corresponding neighbor did not
    /// exist: [`NeighborView::try_read`] returns `None`.
    #[must_use]
    pub fn restricted_to(mut self, allowed_ports: &[Port]) -> Self {
        for flag in &mut self.allowed {
            *flag = false;
        }
        for port in allowed_ports {
            if port.index() < self.allowed.len() {
                self.allowed[port.index()] = true;
            }
        }
        self
    }

    /// Degree of the observed process (number of ports).
    pub fn degree(&self) -> usize {
        self.neighbor_comms.len()
    }

    /// Returns `true` when `port` may be read under the current restriction.
    pub fn is_readable(&self, port: Port) -> bool {
        self.allowed.get(port.index()).copied().unwrap_or(false)
    }

    /// Reads the communication state of the neighbor behind `port`,
    /// recording the read.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range or restricted; protocols that may
    /// run under read restrictions must use [`NeighborView::try_read`].
    pub fn read(&self, port: Port) -> &C {
        self.try_read(port)
            .unwrap_or_else(|| panic!("read of restricted or out-of-range port {port}"))
    }

    /// Reads the communication state of the neighbor behind `port`, or
    /// returns `None` when the port is restricted or out of range. Successful
    /// reads are recorded.
    pub fn try_read(&self, port: Port) -> Option<&C> {
        if !self.is_readable(port) {
            return None;
        }
        let comm = self.neighbor_comms.get(port.index())?;
        if self.tracking {
            self.reads.borrow_mut().push(port);
        }
        Some(comm)
    }

    /// The distinct ports read so far during this activation, in first-read
    /// order.
    pub fn reads(&self) -> Vec<Port> {
        let mut seen = Vec::new();
        for &port in self.reads.borrow().iter() {
            if !seen.contains(&port) {
                seen.push(port);
            }
        }
        seen
    }

    /// Total number of read operations performed (including repeated reads of
    /// the same port).
    pub fn read_operations(&self) -> usize {
        self.reads.borrow().len()
    }

    /// Clears the recorded reads (used when a view is reused across the
    /// enabledness check and the activation).
    pub fn reset_reads(&self) {
        self.reads.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfstab_graph::generators;

    #[test]
    fn reads_are_recorded_in_order_and_deduplicated() {
        let graph = generators::star(4);
        let comms: Vec<u32> = vec![10, 11, 12, 13];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true);
        assert_eq!(view.degree(), 3);
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(*view.read(Port::new(0)), 11);
        assert_eq!(*view.read(Port::new(2)), 13);
        assert_eq!(view.reads(), vec![Port::new(2), Port::new(0)]);
        assert_eq!(view.read_operations(), 3);
        view.reset_reads();
        assert!(view.reads().is_empty());
    }

    #[test]
    fn untracked_views_record_nothing() {
        let graph = generators::path(3);
        let comms: Vec<u32> = vec![0, 1, 2];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(1), &comms, false);
        let _ = view.read(Port::new(0));
        let _ = view.read(Port::new(1));
        assert!(view.reads().is_empty());
        assert_eq!(view.read_operations(), 0);
    }

    #[test]
    fn restriction_hides_ports() {
        let graph = generators::star(5);
        let comms: Vec<u32> = vec![0, 1, 2, 3, 4];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true)
            .restricted_to(&[Port::new(1), Port::new(3)]);
        assert!(view.is_readable(Port::new(1)));
        assert!(!view.is_readable(Port::new(0)));
        assert_eq!(view.try_read(Port::new(0)), None);
        assert_eq!(view.try_read(Port::new(1)), Some(&2));
        assert_eq!(view.reads(), vec![Port::new(1)]);
    }

    #[test]
    #[should_panic(expected = "restricted or out-of-range")]
    fn read_panics_on_restricted_port() {
        let graph = generators::path(2);
        let comms: Vec<u32> = vec![0, 1];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true)
            .restricted_to(&[]);
        let _ = view.read(Port::new(0));
    }

    #[test]
    fn out_of_range_port_is_not_readable() {
        let graph = generators::path(2);
        let comms: Vec<u32> = vec![0, 1];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comms, true);
        assert!(!view.is_readable(Port::new(5)));
        assert_eq!(view.try_read(Port::new(5)), None);
    }

    #[test]
    fn view_maps_ports_to_the_right_neighbors() {
        let graph = generators::ring(4);
        let comms: Vec<u32> = vec![100, 101, 102, 103];
        let p = NodeId::new(2);
        let view = NeighborView::from_snapshot(&graph, p, &comms, true);
        for (port, q) in graph.ports(p) {
            assert_eq!(*view.read(port), comms[q.index()]);
        }
    }
}

//! Full execution traces.
//!
//! A [`Trace`] records, step by step, which processes the scheduler
//! selected, which of them executed an action, which neighbors each of them
//! read, and whose communication state changed. Traces make the paper's
//! per-step definitions (k-efficiency must hold in *every* step) directly
//! checkable in tests and experiments; for long runs prefer the aggregated
//! [`RunStats`](crate::stats::RunStats), which the executor always
//! maintains.

use selfstab_graph::{NodeId, Port};
use serde::{Deserialize, Serialize};

/// What one process did during one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationRecord {
    /// The selected process.
    pub process: NodeId,
    /// Whether one of its actions was enabled (and therefore executed).
    pub executed: bool,
    /// Distinct ports read during the activation, in first-read order.
    pub reads: Vec<Port>,
    /// Whether the activation changed the process's communication state.
    pub comm_changed: bool,
}

/// One step of an execution: the scheduler's selection and the resulting
/// activations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepRecord {
    /// 0-based step index.
    pub step: u64,
    /// Activations of the selected processes.
    pub activations: Vec<ActivationRecord>,
}

impl StepRecord {
    /// Identifiers of the processes selected at this step.
    pub fn selected(&self) -> Vec<NodeId> {
        self.activations.iter().map(|a| a.process).collect()
    }

    /// Returns `true` when some communication variable changed in this step.
    pub fn any_comm_changed(&self) -> bool {
        self.activations.iter().any(|a| a.comm_changed)
    }

    /// Largest number of distinct neighbors read by a single process in this
    /// step.
    pub fn max_reads(&self) -> usize {
        self.activations
            .iter()
            .map(|a| a.reads.len())
            .max()
            .unwrap_or(0)
    }
}

/// A recorded execution prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    steps: Vec<StepRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { steps: Vec::new() }
    }

    /// Appends a step record.
    pub fn push(&mut self, record: StepRecord) {
        self.steps.push(record);
    }

    /// The recorded steps, oldest first.
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The smallest `k` such that every process read at most `k` distinct
    /// neighbors in every recorded step — Definition 4 evaluated over the
    /// trace.
    pub fn measured_efficiency(&self) -> usize {
        self.steps
            .iter()
            .map(StepRecord::max_reads)
            .max()
            .unwrap_or(0)
    }

    /// `R_p` over the trace suffix starting at `from_step`: the set of
    /// distinct ports process `p` read from that step on.
    pub fn suffix_read_set(&self, p: NodeId, from_step: u64) -> Vec<Port> {
        let mut ports: Vec<Port> = Vec::new();
        for record in self.steps.iter().filter(|s| s.step >= from_step) {
            for activation in &record.activations {
                if activation.process == p {
                    for &port in &activation.reads {
                        if !ports.contains(&port) {
                            ports.push(port);
                        }
                    }
                }
            }
        }
        ports
    }

    /// The last step in which any communication variable changed, if any.
    pub fn last_comm_change_step(&self) -> Option<u64> {
        self.steps
            .iter()
            .filter(|s| s.any_comm_changed())
            .map(|s| s.step)
            .max()
    }

    /// Number of processes whose suffix read set (from `from_step`) has at
    /// most `k` elements — the `x` of ♦-(x, k)-stability over the trace,
    /// given the total process count `n`.
    pub fn stable_process_count(&self, n: usize, k: usize, from_step: u64) -> usize {
        (0..n)
            .filter(|&i| self.suffix_read_set(NodeId::new(i), from_step).len() <= k)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(step: u64, entries: &[(usize, &[usize], bool)]) -> StepRecord {
        StepRecord {
            step,
            activations: entries
                .iter()
                .map(|&(p, reads, comm_changed)| ActivationRecord {
                    process: NodeId::new(p),
                    executed: true,
                    reads: reads.iter().map(|&r| Port::new(r)).collect(),
                    comm_changed,
                })
                .collect(),
        }
    }

    #[test]
    fn step_record_helpers() {
        let r = record(3, &[(0, &[0, 1], true), (2, &[1], false)]);
        assert_eq!(r.selected(), vec![NodeId::new(0), NodeId::new(2)]);
        assert!(r.any_comm_changed());
        assert_eq!(r.max_reads(), 2);
    }

    #[test]
    fn trace_efficiency_and_suffix_sets() {
        let mut trace = Trace::new();
        trace.push(record(0, &[(0, &[0, 1, 2], true)]));
        trace.push(record(1, &[(0, &[1], false), (1, &[0], true)]));
        trace.push(record(2, &[(0, &[2], false)]));

        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.measured_efficiency(), 3);
        assert_eq!(trace.last_comm_change_step(), Some(1));
        assert_eq!(
            trace.suffix_read_set(NodeId::new(0), 1),
            vec![Port::new(1), Port::new(2)]
        );
        assert_eq!(trace.suffix_read_set(NodeId::new(0), 0).len(), 3);
        assert_eq!(trace.suffix_read_set(NodeId::new(1), 2), vec![]);
        // From step 1 on, process 0 reads 2 distinct ports, process 1 reads
        // 1, process 2 reads none.
        assert_eq!(trace.stable_process_count(3, 1, 1), 2);
        assert_eq!(trace.stable_process_count(3, 2, 1), 3);
    }

    #[test]
    fn empty_trace_defaults() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.measured_efficiency(), 0);
        assert_eq!(trace.last_comm_change_step(), None);
        assert_eq!(trace.stable_process_count(4, 0, 0), 4);
    }
}

//! Full execution traces.
//!
//! A [`Trace`] records, step by step, which processes the scheduler
//! selected, which of them executed an action, which neighbors each of them
//! read, and whose communication state changed. Traces make the paper's
//! per-step definitions (k-efficiency must hold in *every* step) directly
//! checkable in tests and experiments; for long runs prefer the aggregated
//! [`RunStats`](crate::stats::RunStats), which the executor always
//! maintains.

use selfstab_graph::{NodeId, Port};
use serde::{Deserialize, Serialize};

/// What one process did during one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationRecord {
    /// The selected process.
    pub process: NodeId,
    /// Whether one of its actions was enabled (and therefore executed).
    pub executed: bool,
    /// Distinct ports read during the activation, in first-read order.
    pub reads: Vec<Port>,
    /// Whether the activation changed the process's communication state.
    pub comm_changed: bool,
}

/// One step of an execution: the scheduler's selection and the resulting
/// activations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepRecord {
    /// 0-based step index.
    pub step: u64,
    /// Activations of the selected processes.
    pub activations: Vec<ActivationRecord>,
}

impl StepRecord {
    /// Identifiers of the processes selected at this step.
    pub fn selected(&self) -> Vec<NodeId> {
        self.activations.iter().map(|a| a.process).collect()
    }

    /// Returns `true` when some communication variable changed in this step.
    pub fn any_comm_changed(&self) -> bool {
        self.activations.iter().any(|a| a.comm_changed)
    }

    /// Largest number of distinct neighbors read by a single process in this
    /// step.
    pub fn max_reads(&self) -> usize {
        self.activations
            .iter()
            .map(|a| a.reads.len())
            .max()
            .unwrap_or(0)
    }
}

/// A recorded execution prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    steps: Vec<StepRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { steps: Vec::new() }
    }

    /// Appends a step record.
    pub fn push(&mut self, record: StepRecord) {
        self.steps.push(record);
    }

    /// The recorded steps, oldest first.
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The smallest `k` such that every process read at most `k` distinct
    /// neighbors in every recorded step — Definition 4 evaluated over the
    /// trace.
    pub fn measured_efficiency(&self) -> usize {
        self.steps
            .iter()
            .map(StepRecord::max_reads)
            .max()
            .unwrap_or(0)
    }

    /// `R_p` over the trace suffix starting at `from_step`: the set of
    /// distinct ports process `p` read from that step on, in
    /// **first-read order** (the order the process first touched each
    /// port — the order the paper's suffix arguments walk them in).
    ///
    /// Deduplication is sort-based, `O(R log R)` in the number of reads:
    /// every read is collected with its sequence number, a sort groups
    /// duplicates so each port keeps only its earliest occurrence, and a
    /// final sort by sequence number restores chronological order. (The
    /// historical implementation probed a growing `Vec` with `contains`
    /// per read — quadratic in the distinct-port count, which hurt on
    /// wide-degree workloads like stars and complete graphs.)
    pub fn suffix_read_set(&self, p: NodeId, from_step: u64) -> Vec<Port> {
        let mut reads: Vec<(Port, usize)> = Vec::new();
        for record in self.steps.iter().filter(|s| s.step >= from_step) {
            for activation in &record.activations {
                if activation.process == p {
                    for &port in &activation.reads {
                        reads.push((port, reads.len()));
                    }
                }
            }
        }
        reads.sort_unstable();
        reads.dedup_by_key(|&mut (port, _)| port);
        reads.sort_unstable_by_key(|&(_, seq)| seq);
        reads.into_iter().map(|(port, _)| port).collect()
    }

    /// The last step in which any communication variable changed, if any.
    pub fn last_comm_change_step(&self) -> Option<u64> {
        self.steps
            .iter()
            .filter(|s| s.any_comm_changed())
            .map(|s| s.step)
            .max()
    }

    /// Number of processes whose suffix read set (from `from_step`) has at
    /// most `k` elements — the `x` of ♦-(x, k)-stability over the trace,
    /// given the total process count `n`.
    ///
    /// Single pass over the trace suffix, accumulating each process's
    /// distinct-port set as it goes — `O(total reads · k)` instead of the
    /// historical per-process re-scan (`O(n · steps)` even for processes
    /// that never appear). Each accumulated set is capped at `k + 1`
    /// entries: once a process has read more than `k` distinct ports it
    /// can never count as stable, so its exact set no longer matters and
    /// membership probes stay `O(k)` even on wide-degree workloads.
    /// Activations of processes with index `>= n` are ignored, matching
    /// the old behavior of only probing identifiers `0..n`. A process that
    /// never reads has an empty suffix read set, so with an empty trace
    /// all `n` processes count.
    pub fn stable_process_count(&self, n: usize, k: usize, from_step: u64) -> usize {
        let mut seen: Vec<Vec<Port>> = vec![Vec::new(); n];
        for record in self.steps.iter().filter(|s| s.step >= from_step) {
            for activation in &record.activations {
                let idx = activation.process.index();
                if idx >= n {
                    continue;
                }
                let ports = &mut seen[idx];
                if ports.len() > k {
                    continue;
                }
                for &port in &activation.reads {
                    if !ports.contains(&port) {
                        ports.push(port);
                        if ports.len() > k {
                            break;
                        }
                    }
                }
            }
        }
        seen.iter().filter(|ports| ports.len() <= k).count()
    }

    /// Serializes the trace as JSON (the vendored `serde` is a
    /// non-serializing stub, so the encoding is hand-rolled). Used to
    /// compare on-disk footprints against the compact binary wire format of
    /// [`telemetry::wire`](crate::telemetry::wire); not intended as an
    /// interchange format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"steps\":[");
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"step\":{},\"activations\":[", step.step));
            for (j, a) in step.activations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"process\":{},\"executed\":{},\"reads\":[",
                    a.process.index(),
                    a.executed
                ));
                for (r, port) in a.reads.iter().enumerate() {
                    if r > 0 {
                        out.push(',');
                    }
                    out.push_str(&port.index().to_string());
                }
                out.push_str(&format!("],\"comm_changed\":{}}}", a.comm_changed));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(step: u64, entries: &[(usize, &[usize], bool)]) -> StepRecord {
        StepRecord {
            step,
            activations: entries
                .iter()
                .map(|&(p, reads, comm_changed)| ActivationRecord {
                    process: NodeId::new(p),
                    executed: true,
                    reads: reads.iter().map(|&r| Port::new(r)).collect(),
                    comm_changed,
                })
                .collect(),
        }
    }

    #[test]
    fn step_record_helpers() {
        let r = record(3, &[(0, &[0, 1], true), (2, &[1], false)]);
        assert_eq!(r.selected(), vec![NodeId::new(0), NodeId::new(2)]);
        assert!(r.any_comm_changed());
        assert_eq!(r.max_reads(), 2);
    }

    #[test]
    fn trace_efficiency_and_suffix_sets() {
        let mut trace = Trace::new();
        trace.push(record(0, &[(0, &[0, 1, 2], true)]));
        trace.push(record(1, &[(0, &[1], false), (1, &[0], true)]));
        trace.push(record(2, &[(0, &[2], false)]));

        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.measured_efficiency(), 3);
        assert_eq!(trace.last_comm_change_step(), Some(1));
        assert_eq!(
            trace.suffix_read_set(NodeId::new(0), 1),
            vec![Port::new(1), Port::new(2)]
        );
        assert_eq!(trace.suffix_read_set(NodeId::new(0), 0).len(), 3);
        assert_eq!(trace.suffix_read_set(NodeId::new(1), 2), vec![]);
        // From step 1 on, process 0 reads 2 distinct ports, process 1 reads
        // 1, process 2 reads none.
        assert_eq!(trace.stable_process_count(3, 1, 1), 2);
        assert_eq!(trace.stable_process_count(3, 2, 1), 3);
    }

    /// Wide-degree regression: a hub process re-reads many distinct ports
    /// over many steps (star-like workload). The sort-based dedup must
    /// return every port exactly once, in first-read order, and the
    /// single-pass stable count must agree with per-process probing.
    #[test]
    fn wide_degree_suffix_read_set() {
        let degree = 512;
        let mut trace = Trace::new();
        // First-read order is descending, then repeats ascending: the
        // result must preserve the descending first-touch order.
        let descending: Vec<usize> = (0..degree).rev().collect();
        trace.push(record(0, &[(0, &descending, true)]));
        let ascending: Vec<usize> = (0..degree).collect();
        for step in 1..8 {
            trace.push(record(step, &[(0, &ascending, false), (1, &[0], false)]));
        }

        let set = trace.suffix_read_set(NodeId::new(0), 0);
        assert_eq!(set.len(), degree);
        assert_eq!(
            set,
            (0..degree).rev().map(Port::new).collect::<Vec<_>>(),
            "first-read order must survive the sort-based dedup"
        );
        // Suffix excluding step 0 sees only the ascending repeats.
        assert_eq!(
            trace.suffix_read_set(NodeId::new(0), 1),
            (0..degree).map(Port::new).collect::<Vec<_>>()
        );

        // Single-pass stable count agrees with the per-process definition.
        for k in [0, 1, degree - 1, degree, degree + 3] {
            let expected = (0..3)
                .filter(|&i| trace.suffix_read_set(NodeId::new(i), 0).len() <= k)
                .count();
            assert_eq!(trace.stable_process_count(3, k, 0), expected, "k={k}");
        }
    }

    #[test]
    fn trace_to_json_shape() {
        let mut trace = Trace::new();
        trace.push(record(0, &[(2, &[0, 3], true)]));
        trace.push(record(1, &[]));
        assert_eq!(
            trace.to_json(),
            "{\"steps\":[{\"step\":0,\"activations\":[{\"process\":2,\"executed\":true,\
             \"reads\":[0,3],\"comm_changed\":true}]},{\"step\":1,\"activations\":[]}]}"
        );
    }

    #[test]
    fn empty_trace_defaults() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.measured_efficiency(), 0);
        assert_eq!(trace.last_comm_change_step(), None);
        assert_eq!(trace.stable_process_count(4, 0, 0), 4);
    }
}

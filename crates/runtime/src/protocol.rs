//! The [`Protocol`] trait: one local algorithm, executed by every process.

use std::fmt;

use rand::RngCore;
use selfstab_graph::{Graph, NodeId};

use crate::kernel::EnabledWriter;
use crate::soa::{SoaState, StateStore};
use crate::view::NeighborView;

/// A distributed protocol in the paper's locally shared memory model.
///
/// A protocol is a collection of identical local algorithms, one per process
/// (the *uniform* / anonymous setting; per-process constants such as the
/// local colors of the MIS and MATCHING protocols are stored inside the
/// protocol value itself and indexed by [`NodeId`]).
///
/// The state of a process splits into:
///
/// * its **communication state** ([`Protocol::Comm`]), the part neighbors may
///   read — extracted by [`Protocol::comm`],
/// * its **internal variables**, the remainder of [`Protocol::State`].
///
/// An activation ([`Protocol::activate`]) atomically evaluates the process's
/// guarded actions in priority order against a read-tracked view of its
/// neighbors' communication states and returns the new state of the enabled
/// action with the highest priority, or `None` when the process is disabled.
///
/// # Contract
///
/// * `activate` must return `Some` exactly when `is_enabled` returns `true`
///   for the same configuration (guards are deterministic; only action
///   *bodies* may use randomness).
/// * `activate` and `is_enabled` may only learn about other processes through
///   `view` — this is what makes the measured read sets meaningful.
/// * `comm` must be a pure projection of the state.
///
/// # Threading
///
/// The sharded executor evaluates guards and activations from worker
/// threads that share the protocol value and read the pre-step
/// configuration concurrently, so a protocol must be [`Sync`] and its
/// state/communication types must be [`Send`]` + `[`Sync`]. Protocols are
/// plain data plus pure functions in this model (all mutation goes through
/// the returned states), so these bounds are vacuous in practice — they
/// exclude interior mutability, which the contract above already forbids.
pub trait Protocol: Sync {
    /// Full per-process state: communication plus internal variables.
    ///
    /// The [`SoaState`] bound names the type's struct-of-arrays column
    /// layout, used when the simulation opts into the columnar state store
    /// ([`SimOptions::with_soa_layout`](crate::SimOptions::with_soa_layout)).
    /// Scalar types are covered by blanket impls; compound types without a
    /// hand-written decomposition can use [`aos_state!`](crate::aos_state).
    type State: Clone + fmt::Debug + PartialEq + Send + Sync + SoaState;
    /// Communication state: the projection of the state neighbors can read.
    /// Same [`SoaState`] requirement as [`Protocol::State`].
    type Comm: Clone + fmt::Debug + PartialEq + Send + Sync + SoaState;

    /// Short human-readable protocol name (used in reports and traces).
    fn name(&self) -> &'static str;

    /// Samples an arbitrary state for process `p`.
    ///
    /// Self-stabilization quantifies over *every* initial configuration; the
    /// simulation approximates this by sampling states uniformly over the
    /// variable domains (and the test suites additionally exercise
    /// hand-crafted worst cases).
    fn arbitrary_state(&self, graph: &Graph, p: NodeId, rng: &mut dyn RngCore) -> Self::State;

    /// Projects the communication state of process `p` out of its full
    /// state. Per-process communication **constants** (such as the local
    /// color `C.p` of the MIS and MATCHING protocols) are part of the
    /// communication state and are attached here.
    fn comm(&self, p: NodeId, state: &Self::State) -> Self::Comm;

    /// Returns `true` when at least one guarded action of `p` is enabled.
    ///
    /// Reads performed here are **not** charged to the communication
    /// measures: enabledness is the scheduler's (daemon's) omniscient view,
    /// not a message exchanged by the protocol.
    fn is_enabled(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &Self::State,
        view: &NeighborView<'_, Self::Comm>,
    ) -> bool;

    /// Executes one atomic activation of `p` from `state`, reading neighbors
    /// through `view`, and returns the new state, or `None` when every
    /// guarded action is disabled.
    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &Self::State,
        view: &NeighborView<'_, Self::Comm>,
        rng: &mut dyn RngCore,
    ) -> Option<Self::State>;

    /// Number of bits needed to encode the communication state of `p`
    /// (used for the communication complexity of Definition 5).
    fn comm_bits(&self, graph: &Graph, p: NodeId) -> u64;

    /// Number of bits needed to encode the full local state of `p`
    /// (communication + internal variables; Definition 6 adds the
    /// communication complexity on top of this).
    fn state_bits(&self, graph: &Graph, p: NodeId) -> u64;

    /// The problem's legitimacy predicate over a full configuration.
    fn is_legitimate(&self, graph: &Graph, config: &[Self::State]) -> bool;

    /// Returns `true` when `config` is a *silent* configuration: every
    /// continuation keeps all communication variables fixed.
    ///
    /// The default implementation returns [`Protocol::is_legitimate`], which
    /// is exact for the paper's three protocols (their lemmas show silent ⇔
    /// legitimate up to internal-variable churn); override when the two
    /// notions differ.
    fn is_silent_config(&self, graph: &Graph, config: &[Self::State]) -> bool {
        self.is_legitimate(graph, config)
    }

    /// Legitimacy predicate over a [`StateStore`] in either layout.
    ///
    /// The default delegates to [`Protocol::is_legitimate`]: zero-cost when
    /// the store has contiguous rows, but a full materialization when it is
    /// columnar. Protocols intended for million-node SoA runs should override
    /// this with a streaming check that reads rows through
    /// [`StateStore::with_row`] / [`StateStore::get`] (the core protocols do).
    fn is_legitimate_store(&self, graph: &Graph, config: &StateStore<Self::State>) -> bool {
        match config.as_slice() {
            Some(rows) => self.is_legitimate(graph, rows),
            None => self.is_legitimate(graph, &config.to_vec()),
        }
    }

    /// Silence predicate over a [`StateStore`] in either layout; same
    /// default-vs-override structure as [`Protocol::is_legitimate_store`].
    fn is_silent_store(&self, graph: &Graph, config: &StateStore<Self::State>) -> bool {
        match config.as_slice() {
            Some(rows) => self.is_silent_config(graph, rows),
            None => self.is_silent_config(graph, &config.to_vec()),
        }
    }

    /// Whether this protocol ships a bulk guard kernel
    /// ([`Protocol::refresh_guards_bulk`]).
    ///
    /// The executor consults this once per simulation (together with
    /// [`SimOptions::with_guard_kernels`](crate::SimOptions::with_guard_kernels))
    /// before routing phase A through the bulk path, so protocols without a
    /// kernel never pay a per-batch dispatch check.
    fn has_bulk_guard_kernel(&self) -> bool {
        false
    }

    /// Refreshes the guards of every node in `dirty` in one call, writing
    /// one verdict per node through `out`.
    ///
    /// This is the columnar fast path of the executor's phase A: instead of
    /// decoding a row per dirty node and calling [`Protocol::is_enabled`],
    /// a kernel reaches the raw columns via [`StateStore::columns`] and
    /// evaluates the whole batch with word-parallel bit operations
    /// (`BitColumn::gather_word`) and branch-light slice scans.
    ///
    /// Returns `true` when the batch was handled. Returning `false` —
    /// the default, and what kernels do when a store is not columnar
    /// (`columns()` is `None`) — makes the executor fall back to the
    /// scalar path for the same batch, so a kernel is always an
    /// optimization and never a functionality cliff.
    ///
    /// # Contract
    ///
    /// A kernel that returns `true` must have written **exactly one**
    /// verdict per node of `dirty`, and each verdict must equal what
    /// [`Protocol::is_enabled`] would return for that node on the same
    /// configuration — the equivalence suites diff the two paths
    /// byte-for-byte. Kernels must not allocate (phase A runs inside the
    /// zero-allocation steady-state envelope) and must not read anything
    /// beyond `graph`, the two stores and the protocol's own constants.
    /// Guard reads are never charged to the communication measures, so no
    /// read-tracking applies. Kernels are only consulted when the
    /// simulation has no read restriction installed.
    fn refresh_guards_bulk(
        &self,
        graph: &Graph,
        config: &StateStore<Self::State>,
        comm: &StateStore<Self::Comm>,
        dirty: &[NodeId],
        out: &mut EnabledWriter<'_>,
    ) -> bool {
        let _ = (graph, config, comm, dirty, out);
        false
    }

    /// Number of bits `log2(ceil)` helper for describing variable domains.
    ///
    /// Provided for implementors: the number of bits required to store a
    /// variable ranging over `domain_size` values (at least 1 bit).
    fn bits_for_domain(domain_size: u64) -> u64
    where
        Self: Sized,
    {
        bits_for_domain(domain_size)
    }
}

/// Number of bits required to store a variable ranging over `domain_size`
/// distinct values (at least 1).
pub fn bits_for_domain(domain_size: u64) -> u64 {
    if domain_size <= 2 {
        1
    } else {
        64 - (domain_size - 1).leading_zeros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_domain_matches_log2_ceiling() {
        assert_eq!(bits_for_domain(0), 1);
        assert_eq!(bits_for_domain(1), 1);
        assert_eq!(bits_for_domain(2), 1);
        assert_eq!(bits_for_domain(3), 2);
        assert_eq!(bits_for_domain(4), 2);
        assert_eq!(bits_for_domain(5), 3);
        assert_eq!(bits_for_domain(8), 3);
        assert_eq!(bits_for_domain(9), 4);
        assert_eq!(bits_for_domain(1 << 20), 20);
        assert_eq!(bits_for_domain((1 << 20) + 1), 21);
    }
}

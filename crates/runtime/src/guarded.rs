//! A small guarded-action framework.
//!
//! The paper presents every protocol as an ordered list of guarded actions
//! `⟨guard⟩ → ⟨statement⟩` evaluated with priority (the first enabled action
//! is executed, atomically). The concrete protocols in `selfstab-core`
//! implement [`Protocol`] directly for clarity
//! and performance, but it is often convenient — for prototyping a new
//! protocol, for teaching, or for writing executable transcriptions of
//! pseudo-code — to author the action list literally. This module provides
//! that: [`GuardedAction`] values grouped in a [`GuardedProtocol`], which
//! implements [`Protocol`] with the paper's priority semantics.
//!
//! # Example
//!
//! A two-action transcription of a "copy the maximum of my neighbors if it
//! is larger" protocol:
//!
//! ```
//! use selfstab_graph::{generators, Graph, NodeId, Port};
//! use selfstab_runtime::guarded::{ActionContext, GuardedAction, GuardedProtocol};
//! use selfstab_runtime::scheduler::Synchronous;
//! use selfstab_runtime::{SimOptions, Simulation};
//!
//! let propagate_max = GuardedAction::new(
//!     "adopt-larger-value",
//!     |ctx: &ActionContext<'_, '_, u32, u32>| ctx.neighbor_comms().any(|v| *v > *ctx.state),
//!     |ctx, _rng| ctx.neighbor_comms().copied().max().unwrap_or(*ctx.state),
//! );
//! let protocol = GuardedProtocol::new(
//!     "max-propagation",
//!     vec![propagate_max],
//!     |_, p: NodeId, _| p.index() as u32,      // arbitrary state: the index
//!     |_, state: &u32| *state,                 // comm = whole state
//!     |_, _| 32,                               // comm bits
//!     |_, _| 32,                               // state bits
//!     |_: &Graph, config: &[u32]| {
//!         let max = config.iter().max().copied().unwrap_or(0);
//!         config.iter().all(|&v| v == max)
//!     },
//! );
//! let graph = generators::path(5);
//! let mut sim = Simulation::new(&graph, protocol, Synchronous, 1, SimOptions::default());
//! assert!(sim.run_until_silent(100).silent);
//! assert!(sim.config().iter().all(|&v| v == 4));
//! ```

use std::fmt;

use rand::RngCore;
use selfstab_graph::{Graph, NodeId, Port};

use crate::protocol::Protocol;
use crate::view::NeighborView;

/// Everything a guard or statement may look at: the process, its state, the
/// read-tracked view of its neighborhood, and the topology handle needed for
/// degree/port arithmetic.
pub struct ActionContext<'a, 'v, S, C> {
    /// The graph (for degrees and port arithmetic only — neighbor *state*
    /// must go through [`ActionContext::view`]).
    pub graph: &'a Graph,
    /// The process being activated.
    pub process: NodeId,
    /// Its current full state.
    pub state: &'a S,
    /// The read-tracked view of its neighbors' communication states.
    pub view: &'a NeighborView<'v, C>,
}

impl<S, C> ActionContext<'_, '_, S, C> {
    /// Degree of the activated process.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.process)
    }

    /// Reads the communication state behind `port` (recorded by the view).
    pub fn read(&self, port: Port) -> &C {
        self.view.read(port)
    }

    /// Iterates over the communication states of every neighbor, in port
    /// order (each access is a recorded read — a guard using this is
    /// Δ-efficient by construction).
    pub fn neighbor_comms(&self) -> impl Iterator<Item = &C> + '_ {
        (0..self.degree()).map(move |i| self.view.read(Port::new(i)))
    }
}

/// Boxed guard predicate of a [`GuardedAction`].
pub type GuardFn<S, C> = Box<dyn Fn(&ActionContext<'_, '_, S, C>) -> bool + Send + Sync>;
/// Boxed statement (action body) of a [`GuardedAction`].
pub type StatementFn<S, C> =
    Box<dyn Fn(&ActionContext<'_, '_, S, C>, &mut dyn RngCore) -> S + Send + Sync>;
/// Boxed arbitrary-state sampler of a [`GuardedProtocol`].
pub type ArbitraryFn<S> = Box<dyn Fn(&Graph, NodeId, &mut dyn RngCore) -> S + Send + Sync>;
/// Boxed communication projection of a [`GuardedProtocol`].
pub type CommFn<S, C> = Box<dyn Fn(NodeId, &S) -> C + Send + Sync>;
/// Boxed per-process bit-count function of a [`GuardedProtocol`].
pub type BitsFn = Box<dyn Fn(&Graph, NodeId) -> u64 + Send + Sync>;
/// Boxed legitimacy predicate of a [`GuardedProtocol`].
pub type LegitimateFn<S> = Box<dyn Fn(&Graph, &[S]) -> bool + Send + Sync>;

/// One `⟨guard⟩ → ⟨statement⟩` pair.
pub struct GuardedAction<S, C> {
    name: &'static str,
    guard: GuardFn<S, C>,
    statement: StatementFn<S, C>,
}

impl<S, C> GuardedAction<S, C> {
    /// Creates an action from a guard predicate and a statement producing
    /// the successor state.
    pub fn new<G, A>(name: &'static str, guard: G, statement: A) -> Self
    where
        G: Fn(&ActionContext<'_, '_, S, C>) -> bool + Send + Sync + 'static,
        A: Fn(&ActionContext<'_, '_, S, C>, &mut dyn RngCore) -> S + Send + Sync + 'static,
    {
        GuardedAction {
            name,
            guard: Box::new(guard),
            statement: Box::new(statement),
        }
    }

    /// The action's name (used in debugging output).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Evaluates the guard.
    pub fn is_enabled(&self, ctx: &ActionContext<'_, '_, S, C>) -> bool {
        (self.guard)(ctx)
    }

    /// Executes the statement.
    pub fn execute(&self, ctx: &ActionContext<'_, '_, S, C>, rng: &mut dyn RngCore) -> S {
        (self.statement)(ctx, rng)
    }
}

impl<S, C> fmt::Debug for GuardedAction<S, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuardedAction")
            .field("name", &self.name)
            .finish()
    }
}

/// A protocol authored as an ordered list of guarded actions (highest
/// priority first), plus the projections and predicates the
/// [`Protocol`] trait needs.
pub struct GuardedProtocol<S, C> {
    name: &'static str,
    actions: Vec<GuardedAction<S, C>>,
    arbitrary: ArbitraryFn<S>,
    comm: CommFn<S, C>,
    comm_bits: BitsFn,
    state_bits: BitsFn,
    legitimate: LegitimateFn<S>,
}

impl<S, C> GuardedProtocol<S, C> {
    /// Assembles a protocol from its action list and projections.
    ///
    /// The closures mirror the [`Protocol`] methods; `arbitrary` may ignore
    /// its RNG for deterministic initialization in tests.
    #[allow(clippy::too_many_arguments)]
    pub fn new<FA, FC, FB, FS, FL>(
        name: &'static str,
        actions: Vec<GuardedAction<S, C>>,
        arbitrary: FA,
        comm: FC,
        comm_bits: FB,
        state_bits: FS,
        legitimate: FL,
    ) -> Self
    where
        FA: Fn(&Graph, NodeId, &mut dyn RngCore) -> S + Send + Sync + 'static,
        FC: Fn(NodeId, &S) -> C + Send + Sync + 'static,
        FB: Fn(&Graph, NodeId) -> u64 + Send + Sync + 'static,
        FS: Fn(&Graph, NodeId) -> u64 + Send + Sync + 'static,
        FL: Fn(&Graph, &[S]) -> bool + Send + Sync + 'static,
    {
        GuardedProtocol {
            name,
            actions,
            arbitrary: Box::new(arbitrary),
            comm: Box::new(comm),
            comm_bits: Box::new(comm_bits),
            state_bits: Box::new(state_bits),
            legitimate: Box::new(legitimate),
        }
    }

    /// The ordered action list (highest priority first).
    pub fn actions(&self) -> &[GuardedAction<S, C>] {
        &self.actions
    }

    /// Returns the name of the highest-priority enabled action, if any
    /// (useful for debugging executions).
    pub fn enabled_action_name(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &S,
        view: &NeighborView<'_, C>,
    ) -> Option<&'static str> {
        let ctx = ActionContext {
            graph,
            process: p,
            state,
            view,
        };
        self.actions
            .iter()
            .find(|a| a.is_enabled(&ctx))
            .map(|a| a.name())
    }
}

impl<S, C> fmt::Debug for GuardedProtocol<S, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuardedProtocol")
            .field("name", &self.name)
            .field(
                "actions",
                &self.actions.iter().map(|a| a.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<S, C> Protocol for GuardedProtocol<S, C>
where
    S: Clone + fmt::Debug + PartialEq + Send + Sync + crate::soa::SoaState,
    C: Clone + fmt::Debug + PartialEq + Send + Sync + crate::soa::SoaState,
{
    type State = S;
    type Comm = C;

    fn name(&self) -> &'static str {
        self.name
    }

    fn arbitrary_state(&self, graph: &Graph, p: NodeId, rng: &mut dyn RngCore) -> S {
        (self.arbitrary)(graph, p, rng)
    }

    fn comm(&self, p: NodeId, state: &S) -> C {
        (self.comm)(p, state)
    }

    fn is_enabled(&self, graph: &Graph, p: NodeId, state: &S, view: &NeighborView<'_, C>) -> bool {
        let ctx = ActionContext {
            graph,
            process: p,
            state,
            view,
        };
        self.actions.iter().any(|a| a.is_enabled(&ctx))
    }

    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &S,
        view: &NeighborView<'_, C>,
        rng: &mut dyn RngCore,
    ) -> Option<S> {
        let ctx = ActionContext {
            graph,
            process: p,
            state,
            view,
        };
        // The paper's priority rule: the first action whose guard holds is
        // the one executed, atomically.
        self.actions
            .iter()
            .find(|a| a.is_enabled(&ctx))
            .map(|a| a.execute(&ctx, rng))
    }

    fn comm_bits(&self, graph: &Graph, p: NodeId) -> u64 {
        (self.comm_bits)(graph, p)
    }

    fn state_bits(&self, graph: &Graph, p: NodeId) -> u64 {
        (self.state_bits)(graph, p)
    }

    fn is_legitimate(&self, graph: &Graph, config: &[S]) -> bool {
        (self.legitimate)(graph, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{SimOptions, Simulation};
    use crate::scheduler::{DistributedRandom, Synchronous};
    use rand::Rng;
    use selfstab_graph::generators;

    /// A literal transcription of the paper's Figure 7 COLORING protocol
    /// into the guarded-action DSL: the state is `(color, cur)`.
    fn figure7_coloring(palette: usize) -> GuardedProtocol<(usize, Port), usize> {
        let action1 = GuardedAction::new(
            "conflict-redraw",
            |ctx: &ActionContext<'_, '_, (usize, Port), usize>| {
                let cur = ctx.state.1.clamp_to_degree(ctx.degree());
                *ctx.read(cur) == ctx.state.0
            },
            move |ctx, rng| {
                let cur = ctx.state.1.clamp_to_degree(ctx.degree());
                (
                    rng.gen_range(0..palette),
                    cur.next_round_robin(ctx.degree()),
                )
            },
        );
        let action2 = GuardedAction::new(
            "advance-pointer",
            |ctx: &ActionContext<'_, '_, (usize, Port), usize>| {
                let cur = ctx.state.1.clamp_to_degree(ctx.degree());
                *ctx.read(cur) != ctx.state.0
            },
            |ctx, _rng| {
                let cur = ctx.state.1.clamp_to_degree(ctx.degree());
                (ctx.state.0, cur.next_round_robin(ctx.degree()))
            },
        );
        GuardedProtocol::new(
            "figure7-coloring-dsl",
            vec![action1, action2],
            move |graph, p, rng: &mut dyn RngCore| {
                (
                    rng.gen_range(0..palette),
                    Port::new(rng.gen_range(0..graph.degree(p).max(1))),
                )
            },
            |_, state| state.0,
            move |_, _| crate::protocol::bits_for_domain(palette as u64),
            move |graph, p| {
                crate::protocol::bits_for_domain(palette as u64)
                    + crate::protocol::bits_for_domain(graph.degree(p).max(1) as u64)
            },
            |graph: &Graph, config: &[(usize, Port)]| {
                graph
                    .edges()
                    .all(|(a, b)| config[a.index()].0 != config[b.index()].0)
            },
        )
    }

    /// Compile-time Send audit: every closure slot of a [`GuardedProtocol`]
    /// is boxed with `Send + Sync` bounds, so the assembled protocol can be
    /// executed by any worker thread of a parallel experiment campaign.
    #[test]
    fn guarded_protocols_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GuardedAction<u32, u32>>();
        assert_send_sync::<GuardedProtocol<u32, u32>>();
        assert_send_sync::<GuardedProtocol<(usize, Port), usize>>();
    }

    #[test]
    fn dsl_coloring_stabilizes_and_is_one_efficient() {
        let graph = generators::ring(10);
        let protocol = figure7_coloring(graph.max_degree() + 1);
        let mut sim = Simulation::new(
            &graph,
            protocol,
            DistributedRandom::new(0.5),
            3,
            SimOptions::default().with_trace(),
        );
        let report = sim.run_until_silent(500_000);
        assert!(report.silent);
        assert!(report.legitimate);
        assert_eq!(sim.trace().unwrap().measured_efficiency(), 1);
    }

    #[test]
    fn priority_selects_the_first_enabled_action() {
        // Two actions with overlapping guards: only the first must run.
        let high = GuardedAction::new(
            "set-to-one",
            |_: &ActionContext<'_, '_, u32, u32>| true,
            |_, _| 1u32,
        );
        let low = GuardedAction::new(
            "set-to-two",
            |_: &ActionContext<'_, '_, u32, u32>| true,
            |_, _| 2u32,
        );
        let protocol = GuardedProtocol::new(
            "priority-check",
            vec![high, low],
            |_, _, _: &mut dyn RngCore| 0u32,
            |_, s| *s,
            |_, _| 2,
            |_, _| 2,
            |_: &Graph, config: &[u32]| config.iter().all(|&v| v == 1),
        );
        let graph = generators::path(2);
        let mut sim = Simulation::new(&graph, protocol, Synchronous, 1, SimOptions::default());
        sim.step();
        assert_eq!(sim.config(), &[1, 1]);
        assert!(sim.is_legitimate());
    }

    #[test]
    fn enabled_action_name_reports_the_winning_guard() {
        let graph = generators::path(2);
        let protocol = figure7_coloring(3);
        let comm = vec![1usize, 1];
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comm, false);
        let name = protocol.enabled_action_name(&graph, NodeId::new(0), &(1, Port::new(0)), &view);
        assert_eq!(name, Some("conflict-redraw"));
        let view = NeighborView::from_snapshot(&graph, NodeId::new(0), &comm, false);
        let name = protocol.enabled_action_name(&graph, NodeId::new(0), &(2, Port::new(0)), &view);
        assert_eq!(name, Some("advance-pointer"));
    }

    #[test]
    fn debug_output_lists_action_names() {
        let protocol = figure7_coloring(3);
        let debug = format!("{protocol:?}");
        assert!(debug.contains("figure7-coloring-dsl"));
        assert!(debug.contains("conflict-redraw"));
        assert!(debug.contains("advance-pointer"));
        assert_eq!(protocol.actions().len(), 2);
        assert_eq!(protocol.actions()[0].name(), "conflict-redraw");
    }
}

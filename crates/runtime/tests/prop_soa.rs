//! Property tests for the struct-of-arrays state store.
//!
//! Two layers:
//!
//! * **Store vs model**: a columnar [`StateStore`] driven by a random
//!   get/set/roundtrip op sequence must behave exactly like the reference
//!   `Vec` model it was built from.
//! * **Execution equivalence**: a simulation using the SoA layout — with
//!   and without the bulk guard-kernel path — must be observably identical
//!   to the array-of-structs baseline under random interleavings of steps
//!   and structured fault injections, for every daemon and at
//!   `step_workers ∈ {1, 4}`. Layout and guard-refresh strategy are
//!   storage/executor concerns; if either ever leaked into configurations,
//!   enabled sets, executed lists or statistics, these properties would
//!   shrink to a minimal witness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use selfstab_graph::{generators, Graph, NodeId, Port};
use selfstab_runtime::faults::{BallCenter, FaultInjector, FaultLoad, FaultModel};
use selfstab_runtime::protocol::Protocol;
use selfstab_runtime::scheduler::{
    CentralRandom, CentralRoundRobin, DistributedRandom, Fair, LocallyCentral, Scheduler,
    StarvingAdversary, Synchronous,
};
use selfstab_runtime::view::NeighborView;
use selfstab_runtime::{EnabledWriter, SimOptions, Simulation, StateStore};

/// Minimum propagation with a randomized descent (mirrors the protocol of
/// `parallel_step_equivalence.rs`): guards read every neighbor and the
/// activation draws from the per-activation RNG, so divergence anywhere —
/// layout, RNG streams, dirty routing — lands in the configuration.
struct NoisyMin;

impl Protocol for NoisyMin {
    type State = u32;
    type Comm = u32;

    fn name(&self) -> &'static str {
        "noisy-min"
    }

    fn arbitrary_state(&self, _graph: &Graph, _p: NodeId, rng: &mut dyn RngCore) -> u32 {
        rand::Rng::gen_range(rng, 0..1000)
    }

    fn comm(&self, _p: NodeId, state: &u32) -> u32 {
        *state
    }

    fn is_enabled(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
    ) -> bool {
        (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
    }

    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
        rng: &mut dyn RngCore,
    ) -> Option<u32> {
        let min = (0..graph.degree(p))
            .map(|i| *view.read(Port::new(i)))
            .min()
            .unwrap_or(*state);
        if min >= *state {
            return None;
        }
        let jitter = (rng.next_u64() & 1) as u32;
        Some(min.saturating_sub(jitter.min(min)))
    }

    fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
        let min = config.iter().min().copied().unwrap_or(0);
        config.iter().all(|&v| v == min)
    }

    fn has_bulk_guard_kernel(&self) -> bool {
        true
    }

    /// Bulk form of the guard: a direct scan over the `u32` columns. The
    /// kernel lanes below route dirty batches through this path, so any
    /// disagreement with the scalar `is_enabled` above shrinks to a
    /// minimal witness.
    fn refresh_guards_bulk(
        &self,
        graph: &Graph,
        config: &StateStore<u32>,
        comm: &StateStore<u32>,
        dirty: &[NodeId],
        out: &mut EnabledWriter<'_>,
    ) -> bool {
        let (Some(state), Some(comm)) = (config.columns(), comm.columns()) else {
            return false;
        };
        for &p in dirty {
            let own = state[p.index()];
            let enabled = graph
                .neighbor_slice(p)
                .iter()
                .any(|q| comm[q.index()] < own);
            out.write(p, enabled);
        }
        true
    }
}

/// One random interleaving element: execute a step, or inject a structured
/// fault (index into [`models`]).
#[derive(Debug, Clone, Copy)]
enum Op {
    Step,
    Inject(usize),
}

fn models() -> [FaultModel; 4] {
    [
        FaultModel::Uniform(FaultLoad::Count(2)),
        FaultModel::DegreeTargeted(FaultLoad::Count(2)),
        FaultModel::Ball {
            center: BallCenter::Random,
            radius: 1,
        },
        FaultModel::StuckAt(FaultLoad::Count(1)),
    ]
}

/// One executor lane: a simulation in some layout/worker configuration
/// plus its own (identically seeded) fault stream.
struct Lane<'g, S: Scheduler> {
    label: &'static str,
    sim: Simulation<'g, NoisyMin, S>,
    injector: FaultInjector,
    fault_rng: StdRng,
}

/// Drives the AoS baseline and the SoA lanes — sequential and 4-worker
/// sharded, each with the scalar guard walk and with the bulk
/// guard-kernel path forced on — through one op interleaving in lockstep
/// and asserts that no observable ever diverges.
fn assert_soa_equivalence<S: Scheduler>(
    graph: &Graph,
    make: impl Fn() -> S,
    seed: u64,
    ops: &[Op],
    daemon: &str,
) {
    let lane = |label: &'static str, options: SimOptions| Lane {
        label,
        sim: Simulation::new(graph, NoisyMin, make(), seed, options),
        injector: FaultInjector::new(graph),
        fault_rng: StdRng::seed_from_u64(seed ^ 0x5EED),
    };
    let mut baseline = lane("aos", SimOptions::default());
    let mut soa_lanes = [
        lane("soa", SimOptions::default().with_soa_layout()),
        lane(
            "soa-w4",
            SimOptions::default()
                .with_soa_layout()
                .with_step_workers(4)
                .with_parallel_work_threshold(0),
        ),
        lane(
            "soa+k",
            SimOptions::default()
                .with_soa_layout()
                .with_guard_kernels()
                .with_guard_kernel_threshold(0),
        ),
        lane(
            "soa+k-w4",
            SimOptions::default()
                .with_soa_layout()
                .with_guard_kernels()
                .with_guard_kernel_threshold(0)
                .with_step_workers(4)
                .with_parallel_work_threshold(0),
        ),
    ];
    assert!(!baseline.sim.state_store().is_soa());
    for lane in &soa_lanes {
        assert!(lane.sim.state_store().is_soa(), "u32 state is columnar");
        assert!(lane.sim.comm_store().is_soa());
    }

    let models = models();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Step => {
                let expected = baseline.sim.step();
                for lane in &mut soa_lanes {
                    let outcome = lane.sim.step();
                    let label = lane.label;
                    prop_assert_eq!(
                        outcome,
                        expected,
                        "{}/{}: step outcome diverged at op {}",
                        daemon,
                        label,
                        i
                    );
                    prop_assert_eq!(
                        lane.sim.last_executed(),
                        baseline.sim.last_executed(),
                        "{}/{}: executed list diverged at op {}",
                        daemon,
                        label,
                        i
                    );
                }
            }
            Op::Inject(m) => {
                let model = models[m % models.len()];
                let expected = baseline
                    .injector
                    .inject(&mut baseline.sim, model, &mut baseline.fault_rng)
                    .to_vec();
                for lane in &mut soa_lanes {
                    let victims = lane
                        .injector
                        .inject(&mut lane.sim, model, &mut lane.fault_rng)
                        .to_vec();
                    prop_assert_eq!(
                        &victims,
                        &expected,
                        "{}/{}: victims diverged at op {}",
                        daemon,
                        lane.label,
                        i
                    );
                }
            }
        }
        // The heart of the property: the decoded configuration and the
        // maintained enabled set are byte-identical across layouts after
        // every operation.
        let expected_config = baseline.sim.config_vec();
        let expected_flags = baseline.sim.enabled_set().as_flags().to_vec();
        for lane in &mut soa_lanes {
            prop_assert_eq!(
                lane.sim.config_vec(),
                expected_config.clone(),
                "{}/{}: configuration diverged at op {}",
                daemon,
                lane.label,
                i
            );
            prop_assert_eq!(
                lane.sim.enabled_set().as_flags(),
                &expected_flags[..],
                "{}/{}: enabled flags diverged at op {}",
                daemon,
                lane.label,
                i
            );
        }
    }
    // Settle: same silent point, same stats, same report.
    let expected_report = baseline.sim.run_until_silent(100_000);
    prop_assert!(expected_report.silent, "{}: baseline must settle", daemon);
    for lane in &mut soa_lanes {
        let report = lane.sim.run_until_silent(100_000);
        prop_assert_eq!(
            report,
            expected_report,
            "{}/{}: reports diverged",
            daemon,
            lane.label
        );
        prop_assert_eq!(lane.sim.config_vec(), baseline.sim.config_vec());
        prop_assert_eq!(
            lane.sim.stats(),
            baseline.sim.stats(),
            "{}/{}: stats diverged",
            daemon,
            lane.label
        );
    }
}

/// Dispatches a daemon index to a concrete scheduler type (all seven).
fn run_with_daemon(graph: &Graph, daemon_idx: usize, seed: u64, ops: &[Op]) {
    match daemon_idx {
        0 => assert_soa_equivalence(graph, || Synchronous, seed, ops, "synchronous"),
        1 => assert_soa_equivalence(graph, CentralRoundRobin::new, seed, ops, "round-robin"),
        2 => assert_soa_equivalence(
            graph,
            CentralRandom::enabled_only,
            seed,
            ops,
            "central-random",
        ),
        3 => assert_soa_equivalence(
            graph,
            || DistributedRandom::new(0.4),
            seed,
            ops,
            "distributed-random",
        ),
        4 => assert_soa_equivalence(
            graph,
            || LocallyCentral::new(graph, 0.5),
            seed,
            ops,
            "locally-central",
        ),
        5 => assert_soa_equivalence(
            graph,
            || Fair::new(DistributedRandom::new(0.05), 4),
            seed,
            ops,
            "fair(distributed-random)",
        ),
        _ => assert_soa_equivalence(
            graph,
            || Fair::new(StarvingAdversary::new(), 3),
            seed,
            ops,
            "fair(starving-adversary)",
        ),
    }
}

/// Derives a random step/inject interleaving from one seed (the vendored
/// proptest exposes scalar range strategies; sequences are derived).
fn ops_from_seed(seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rand::Rng::gen_range(&mut rng, 5..30usize);
    (0..len)
        .map(|_| {
            if rand::Rng::gen_range(&mut rng, 0..5u32) == 0 {
                Op::Inject(rand::Rng::gen_range(&mut rng, 0..4usize))
            } else {
                Op::Step
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A columnar store driven by a random op sequence behaves exactly
    /// like the `Vec` it was built from.
    #[test]
    fn columnar_store_matches_vec_model(
        len in 1usize..200,
        fill_seed in 0u64..1_000_000,
        op_seed in 0u64..1_000_000,
    ) {
        let mut fill = StdRng::seed_from_u64(fill_seed);
        let mut model: Vec<u32> = (0..len)
            .map(|_| rand::Rng::gen_range(&mut fill, 0..10_000u32))
            .collect();
        let mut store = StateStore::from_vec(model.clone(), true);
        prop_assert!(store.is_soa());
        prop_assert_eq!(store.len(), model.len());
        let mut ops = StdRng::seed_from_u64(op_seed);
        for _ in 0..100 {
            let i = rand::Rng::gen_range(&mut ops, 0..len);
            prop_assert_eq!(store.get(i), model[i]);
            prop_assert_eq!(store.with_row(i, |v| *v), model[i]);
            let value = rand::Rng::gen_range(&mut ops, 0..10_000u32);
            store.set(i, &value);
            model[i] = value;
        }
        prop_assert_eq!(store.to_vec(), model.clone());
        prop_assert_eq!(store.into_vec(), model);
    }

    /// SoA executions (sequential and 4-worker sharded) are observably
    /// identical to the AoS baseline under random step/fault
    /// interleavings, for every daemon.
    #[test]
    fn soa_execution_matches_aos_under_every_daemon(
        daemon_idx in 0usize..7,
        seed in 0u64..1_000_000,
        ops_seed in 0u64..1_000_000,
    ) {
        let graph = generators::grid(4, 5);
        let ops = ops_from_seed(ops_seed);
        run_with_daemon(&graph, daemon_idx, seed, &ops);
    }
}

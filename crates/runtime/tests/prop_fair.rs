//! Property test for the [`Fair`] scheduler wrapper: no process goes more
//! than `window` consecutive steps without being selected, no matter how
//! adversarial the wrapped scheduler is — so every continuously-enabled
//! process is activated within a bounded number of steps, which is the
//! paper's fairness assumption made quantitative.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfstab_runtime::enabled::EnabledSet;
use selfstab_runtime::scheduler::{
    CentralRoundRobin, DistributedRandom, Fair, Scheduler, SchedulerContext, StarvingAdversary,
    Synchronous,
};

/// The inner schedulers the wrapper is exercised against, including the one
/// built to starve processes.
fn make_inner(kind: u8) -> Box<dyn Scheduler> {
    match kind % 4 {
        0 => Box::new(StarvingAdversary::new()),
        1 => Box::new(CentralRoundRobin::new()),
        2 => Box::new(DistributedRandom::new(0.05)),
        _ => Box::new(Synchronous),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fair_wrapper_selects_every_process_within_the_window(
        n in 1usize..24,
        window in 1u64..16,
        inner_kind in 0u8..4,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scheduler = Fair::new(make_inner(inner_kind), window);
        // `continuously[i]`: process i is enabled at every step; the others
        // flicker randomly (the fairness bound only concerns processes whose
        // guard stays enabled, but selection must be forced regardless).
        let continuously: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.6)).collect();
        let mut unselected = vec![0u64; n];
        for step in 0..300u64 {
            let flags: Vec<bool> = continuously
                .iter()
                .map(|&always| always || rng.gen_bool(0.5))
                .collect();
            let enabled = EnabledSet::from_flags(flags);
            let ctx = SchedulerContext {
                step,
                enabled: &enabled,
            };
            let mut chosen = Vec::new();
            scheduler.select(&ctx, &mut rng, &mut chosen);
            prop_assert!(!chosen.is_empty(), "schedulers must select non-empty subsets");
            prop_assert!(
                chosen.windows(2).all(|w| w[0] < w[1]),
                "selections must be sorted and duplicate-free"
            );
            let mut selected_now = vec![false; n];
            for p in &chosen {
                prop_assert!(p.index() < n, "selection outside the system");
                selected_now[p.index()] = true;
            }
            for i in 0..n {
                if selected_now[i] {
                    unselected[i] = 0;
                } else {
                    unselected[i] += 1;
                    prop_assert!(
                        unselected[i] <= window,
                        "process {i} not selected for {} > window = {window} steps \
                         (inner = {}, step = {step})",
                        unselected[i],
                        scheduler.inner().name(),
                    );
                }
            }
        }
        // Sanity: with a small window every process really was selected.
        prop_assert!(unselected.iter().all(|&u| u <= window));
    }
}

//! Steady-state `Simulation::step()` performs **zero heap allocations**.
//!
//! A counting global allocator records every `alloc`/`realloc`; after a
//! warm-up phase that grows the executor's scratch buffers to their working
//! size, driving the simulation further — silent stepping, fault injection,
//! repair stepping — must not touch the allocator at all. This is the
//! enforcement test for the zero-allocation hot path: any future `Vec`,
//! `Box`, clone or format sneaking into `step()` (or into the schedulers'
//! `select`) trips it immediately.
//!
//! The one deliberate exception is trace recording (`record_trace`), which
//! retains per-step records and therefore allocates by design; it stays off
//! here, as it is in every large-scale experiment. The telemetry layer's
//! default configuration — a [`NullSink`] attached, metrics disabled — is
//! part of the enforced regime: the sink's `is_recording() == false` makes
//! the executor skip record construction entirely, so attaching it must be
//! indistinguishable from attaching nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use selfstab_graph::{generators, Graph, NodeId, Port};
use selfstab_runtime::faults::{BallCenter, FaultInjector, FaultLoad, FaultModel};
use selfstab_runtime::protocol::Protocol;
use selfstab_runtime::scheduler::{
    CentralRandom, CentralRoundRobin, DistributedRandom, LocallyCentral, Scheduler, Synchronous,
};
use selfstab_runtime::view::NeighborView;
use selfstab_runtime::{EnabledWriter, SimOptions, Simulation, StateStore};

/// Global allocation-event counter (alloc + realloc; frees are irrelevant
/// to the "no allocation" claim).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Allocation events observed on sharded-executor **worker threads** only
/// (threads inside their `enter_step_worker`/`exit_step_worker` window).
/// The sequential hot path forbids all allocation; the threaded dispatch
/// path additionally forbids allocation *on workers* — the coordinator may
/// build its per-step task list, workers may not touch the allocator.
static WORKER_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

impl CountingAllocator {
    fn count(&self) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed); // ordering: count-only; asserted after quiescence
        if selfstab_runtime::probes::is_step_worker() {
            WORKER_ALLOCATIONS.fetch_add(1, Ordering::Relaxed); // ordering: count-only; asserted after workers exit
        }
    }
}

// SAFETY: delegates every operation unchanged to the `System` allocator;
// the only addition is a relaxed counter increment (`is_step_worker` is a
// const-initialized thread-local `Cell` read — no allocation, no panic).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed) // ordering: read on the asserting thread between steps
}

fn worker_allocation_count() -> u64 {
    WORKER_ALLOCATIONS.load(Ordering::Relaxed) // ordering: read after scoped workers joined
}

/// Minimum-propagation toy protocol with `Copy` state: the same executor
/// shape as the paper protocols (guard reads all neighbors, activation
/// copies the minimum) without depending on `selfstab-core`.
struct MinValue;

impl Protocol for MinValue {
    type State = u32;
    type Comm = u32;

    fn name(&self) -> &'static str {
        "min-value"
    }

    fn arbitrary_state(&self, _graph: &Graph, p: NodeId, _rng: &mut dyn RngCore) -> u32 {
        (p.index() as u32) * 13 + 7
    }

    fn comm(&self, _p: NodeId, state: &u32) -> u32 {
        *state
    }

    fn is_enabled(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
    ) -> bool {
        (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
    }

    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
        _rng: &mut dyn RngCore,
    ) -> Option<u32> {
        let min = (0..graph.degree(p))
            .map(|i| *view.read(Port::new(i)))
            .min()
            .unwrap_or(*state);
        (min < *state).then_some(min)
    }

    fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
        let min = config.iter().min().copied().unwrap_or(0);
        config.iter().all(|&v| v == min)
    }

    fn has_bulk_guard_kernel(&self) -> bool {
        true
    }

    /// Bulk form of the guard: a direct scan over the `u32` columns using
    /// only borrowed slices — the kernel regime below asserts this path is
    /// as allocation-free as the scalar walk.
    fn refresh_guards_bulk(
        &self,
        graph: &Graph,
        config: &StateStore<u32>,
        comm: &StateStore<u32>,
        dirty: &[NodeId],
        out: &mut EnabledWriter<'_>,
    ) -> bool {
        let (Some(state), Some(comm)) = (config.columns(), comm.columns()) else {
            return false;
        };
        for &p in dirty {
            let own = state[p.index()];
            let enabled = graph
                .neighbor_slice(p)
                .iter()
                .any(|q| comm[q.index()] < own);
            out.write(p, enabled);
        }
        true
    }
}

/// Drives one daemon through the three steady-state regimes and asserts
/// that none of them allocates after warm-up.
fn assert_zero_alloc_steady_state<S: Scheduler>(graph: &Graph, scheduler: S, daemon: &str) {
    let mut sim = Simulation::new(graph, MinValue, scheduler, 42, SimOptions::default());

    // Converge, then warm every scratch buffer past its working size:
    // plain silent steps plus a few fault/repair cycles so the dirty queue,
    // the update buffer and the read log have all seen their peak load.
    let report = sim.run_until_silent(500_000);
    assert!(report.silent, "{daemon}: MinValue must stabilize");
    sim.run_steps(300);
    for round in 0..5u32 {
        sim.set_state(
            NodeId::new((7 * round as usize + 1) % graph.node_count()),
            0,
        );
        sim.run_steps(100);
    }

    // Regime 1: silent stepping.
    let before = allocation_count();
    sim.run_steps(2_000);
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "{daemon}: silent stepping allocated {} times",
        after - before
    );

    // Regime 2: fault injection + repair stepping.
    let before = allocation_count();
    for round in 0..20u32 {
        sim.set_state(
            NodeId::new((3 * round as usize + 2) % graph.node_count()),
            0,
        );
        sim.run_steps(50);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "{daemon}: fault/repair stepping allocated {} times",
        after - before
    );

    // Regime 3: enabled-set queries between steps (refresh path).
    let before = allocation_count();
    for _ in 0..200 {
        let _ = sim.enabled_set().count();
        sim.step();
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "{daemon}: enabled-set refresh allocated {} times",
        after - before
    );

    // Regime 4: structured fault injections (the fault-scenario engine's
    // victim selection + adversarial state search) interleaved with
    // stepping. The injector's scratch — partial Fisher–Yates pool, BFS
    // distance/queue buffers, victim list — is warmed by one injection per
    // model, after which repeated injections must not allocate.
    let models = [
        FaultModel::Uniform(FaultLoad::Fraction(0.05)),
        FaultModel::DegreeTargeted(FaultLoad::Count(3)),
        FaultModel::Ball {
            center: BallCenter::Random,
            radius: 2,
        },
        FaultModel::StuckAt(FaultLoad::Count(2)),
    ];
    let mut injector = FaultInjector::new(graph);
    let mut fault_rng = StdRng::seed_from_u64(7);
    for &model in &models {
        injector.inject(&mut sim, model, &mut fault_rng);
        sim.run_steps(30);
    }
    let before = allocation_count();
    for round in 0..12u32 {
        let model = models[round as usize % models.len()];
        injector.inject(&mut sim, model, &mut fault_rng);
        sim.run_steps(50);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "{daemon}: structured fault injection + repair stepping allocated {} times",
        after - before
    );
}

/// The telemetry default regime: a [`NullSink`] attached and metrics
/// disabled must leave the steady state allocation-free — the sink
/// reports `is_recording() == false`, so the executor never builds step
/// records, and the disabled metrics registry costs one relaxed load.
fn assert_zero_alloc_with_null_sink(graph: &Graph) {
    assert!(
        !selfstab_runtime::telemetry::metrics::enabled(),
        "this binary never enables metrics; the regime below relies on it"
    );
    let mut sim = Simulation::new(
        graph,
        MinValue,
        DistributedRandom::new(0.3),
        42,
        SimOptions::default(),
    );
    // The attach itself boxes the sink — that single allocation happens
    // here, before the measured window.
    sim.attach_trace_sink(Box::new(selfstab_runtime::NullSink));

    let report = sim.run_until_silent(500_000);
    assert!(report.silent, "null-sink: MinValue must stabilize");
    for round in 0..5u32 {
        sim.set_state(
            NodeId::new((7 * round as usize + 1) % graph.node_count()),
            0,
        );
        sim.run_steps(100);
    }

    let before = allocation_count();
    sim.run_steps(2_000);
    for round in 0..10u32 {
        sim.set_state(
            NodeId::new((3 * round as usize + 2) % graph.node_count()),
            0,
        );
        sim.run_steps(50);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "null-sink steady state allocated {} times (the executor must skip \
         record construction when the sink is not recording)",
        after - before
    );
}

/// Drives the sharded executor with `workers > 1` through the steady-state
/// regimes and asserts that **worker threads** never allocate.
///
/// The coordinator legitimately allocates per threaded step (the task list
/// handed to the claim loop, plus `thread::scope` bookkeeping), so the
/// process-global counter is not required to stay flat here — only the
/// worker-attributed counter is, and it must stay at zero: every per-shard
/// collection a worker touches (dirty queue, staged updates, executed
/// list, read log, distinct-read scratch) is a pre-sized scratch buffer
/// owned by its shard.
fn assert_zero_worker_alloc_steady_state<S: Scheduler>(
    graph: &Graph,
    scheduler: S,
    workers: usize,
    daemon: &str,
) {
    let options = SimOptions::default()
        .with_step_workers(workers)
        // These graphs are far below the production work threshold; force
        // the threaded dispatch path so workers actually run.
        .with_parallel_work_threshold(0);
    let mut sim = Simulation::new(graph, MinValue, scheduler, 42, options);

    // Warm up exactly like the sequential regimes: converge, then a few
    // fault/repair cycles so every per-shard scratch buffer has seen its
    // peak load.
    let report = sim.run_until_silent(500_000);
    assert!(report.silent, "{daemon}: MinValue must stabilize");
    for round in 0..5u32 {
        sim.set_state(
            NodeId::new((7 * round as usize + 1) % graph.node_count()),
            0,
        );
        sim.run_steps(100);
    }

    // Regime 1: silent threaded stepping.
    let before = worker_allocation_count();
    sim.run_steps(1_000);
    let after = worker_allocation_count();
    assert_eq!(
        after - before,
        0,
        "{daemon}/workers={workers}: silent stepping allocated {} times on worker threads",
        after - before
    );

    // Regime 2: fault injection + threaded repair stepping (repair waves
    // cross shard boundaries, so staged updates and dirty routing get
    // exercised on every shard).
    let before = worker_allocation_count();
    for round in 0..10u32 {
        sim.set_state(
            NodeId::new((3 * round as usize + 2) % graph.node_count()),
            0,
        );
        sim.run_steps(50);
    }
    let after = worker_allocation_count();
    assert_eq!(
        after - before,
        0,
        "{daemon}/workers={workers}: fault/repair stepping allocated {} times on worker threads",
        after - before
    );
}

/// The struct-of-arrays regime: a columnar state store
/// (`SimOptions::with_soa_layout`; `u32` state is columnar) must preserve
/// the zero-allocation steady state. With `workers == 1` the process-global
/// counter must stay flat — row decode/encode works on stack locals, and
/// the debug invariant's communication materialization reuses a persistent
/// scratch. With `workers > 1` the coordinator may allocate its per-step
/// task list but worker threads must not (gather buffers are per-shard
/// scratch).
///
/// With `kernels` set, the same regimes run with the bulk guard-kernel
/// path forced on (`with_guard_kernels`, threshold zero): every dirty
/// batch routes through `refresh_guards_bulk`, which must be as
/// allocation-free as the scalar walk it replaces.
fn assert_zero_alloc_soa_steady_state(graph: &Graph, workers: usize, kernels: bool, daemon: &str) {
    let mut options = SimOptions::default().with_soa_layout();
    if kernels {
        options = options.with_guard_kernels().with_guard_kernel_threshold(0);
    }
    if workers > 1 {
        options = options
            .with_step_workers(workers)
            .with_parallel_work_threshold(0);
    }
    let mut sim = Simulation::new(graph, MinValue, DistributedRandom::new(0.3), 42, options);
    assert!(
        sim.state_store().is_soa(),
        "{daemon}: store must be columnar"
    );

    // Warm up: converge (silence checks may allocate here — they are not
    // part of the steady state), then fault/repair cycles to grow every
    // scratch buffer, including the SoA gather buffers and debug scratch.
    let report = sim.run_until_silent(500_000);
    assert!(report.silent, "{daemon}: MinValue must stabilize");
    sim.run_steps(300);
    for round in 0..5u32 {
        sim.set_state(
            NodeId::new((7 * round as usize + 1) % graph.node_count()),
            0,
        );
        sim.run_steps(100);
    }

    let counter: fn() -> u64 = if workers == 1 {
        allocation_count
    } else {
        worker_allocation_count
    };
    let scope = if workers == 1 {
        ""
    } else {
        " on worker threads"
    };

    // Regime 1: silent stepping through the columnar store.
    let before = counter();
    sim.run_steps(1_000);
    let after = counter();
    assert_eq!(
        after - before,
        0,
        "{daemon}/workers={workers}: SoA silent stepping allocated {} times{scope}",
        after - before
    );

    // Regime 2: fault injection + repair stepping (column encode on merge,
    // lazy gather on guard re-evaluation).
    let before = counter();
    for round in 0..10u32 {
        sim.set_state(
            NodeId::new((3 * round as usize + 2) % graph.node_count()),
            0,
        );
        sim.run_steps(50);
    }
    let after = counter();
    assert_eq!(
        after - before,
        0,
        "{daemon}/workers={workers}: SoA fault/repair stepping allocated {} times{scope}",
        after - before
    );
}

#[test]
fn steady_state_step_performs_zero_heap_allocations() {
    // One test function only: the counter is process-global, and a second
    // concurrently-running test would pollute it.
    let ring = generators::ring(128);
    let grid = generators::grid(12, 12);

    assert_zero_alloc_steady_state(&ring, CentralRandom::new(), "central-random");
    assert_zero_alloc_steady_state(&ring, CentralRandom::enabled_only(), "central-enabled");
    assert_zero_alloc_steady_state(&ring, CentralRoundRobin::new(), "round-robin");
    assert_zero_alloc_steady_state(&ring, Synchronous, "synchronous");
    assert_zero_alloc_steady_state(&ring, DistributedRandom::new(0.3), "distributed-random");
    assert_zero_alloc_steady_state(
        &grid,
        DistributedRandom::new(0.3),
        "distributed-random/grid",
    );
    let locally_central = LocallyCentral::new(&grid, 0.4);
    assert_zero_alloc_steady_state(&grid, locally_central, "locally-central/grid");

    // Telemetry default configuration: NullSink attached, metrics off.
    assert_zero_alloc_with_null_sink(&ring);

    // Parallel steady-state regime: the sharded executor with k > 1
    // workers must keep its worker threads allocation-free. A bigger ring
    // gives every one of the 4 shards a real chunk of work.
    let big_ring = generators::ring(512);
    assert_zero_worker_alloc_steady_state(&big_ring, Synchronous, 4, "synchronous/ring512");
    assert_zero_worker_alloc_steady_state(
        &big_ring,
        DistributedRandom::new(0.3),
        4,
        "distributed-random/ring512",
    );
    assert_zero_worker_alloc_steady_state(&grid, CentralRoundRobin::new(), 2, "round-robin/grid");

    // Struct-of-arrays regimes: the columnar store preserves the
    // zero-allocation steady state, sequentially and under the sharded
    // executor.
    assert_zero_alloc_soa_steady_state(&ring, 1, false, "soa/ring");
    assert_zero_alloc_soa_steady_state(&big_ring, 4, false, "soa/ring512");

    // Guard-kernel regimes: routing every dirty batch through the bulk
    // guard kernel must not reintroduce allocation, sequentially or on
    // worker threads.
    assert_zero_alloc_soa_steady_state(&ring, 1, true, "soa+kernels/ring");
    assert_zero_alloc_soa_steady_state(&big_ring, 4, true, "soa+kernels/ring512");

    // Sanity check that the counter actually works: an explicit allocation
    // must register.
    let before = allocation_count();
    let v: Vec<u64> = Vec::with_capacity(32);
    assert!(v.capacity() >= 32);
    assert!(
        allocation_count() > before,
        "counting allocator must observe explicit allocations"
    );
    // And the main thread is never attributed as a step worker, so the
    // allocation above landed only in the process-global counter.
    assert!(!selfstab_runtime::probes::is_step_worker());
}

//! End-to-end record → replay determinism, across every daemon.
//!
//! Each case runs a randomized protocol (the activation draws from the
//! per-activation RNG, so the replay must reproduce the executor's RNG
//! keying exactly) under one of the seven daemons, with mid-run fault
//! injections driven by the fault-scenario engine, while a [`FileSink`]
//! captures the step stream. The trace file is then read back and
//! replayed through [`telemetry::replay_with`]; the replayed
//! [`RunStats`] and final configuration must equal the recording's both
//! by `PartialEq` and by the FNV digests sealed in the trace footer.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use selfstab_graph::{generators, Graph, NodeId, Port};
use selfstab_runtime::faults::{
    run_fault_plan, FaultEvent, FaultInjector, FaultLoad, FaultModel, FaultPlan,
};
use selfstab_runtime::protocol::Protocol;
use selfstab_runtime::scheduler::{
    CentralRandom, CentralRoundRobin, DistributedRandom, Fair, LocallyCentral, Scheduler,
    StarvingAdversary, Synchronous,
};
use selfstab_runtime::telemetry::{replay_with, Fnv64, TraceFileReader, TraceFooter, TraceHeader};
use selfstab_runtime::view::NeighborView;
use selfstab_runtime::{FileSink, RunStats, SimOptions, Simulation};

/// Greedy coloring whose repair move consults the activation RNG: a
/// process in conflict with a neighbor jumps to a *random* free color.
/// Replay can only reproduce this if the executor's `(seed, step,
/// process)` RNG keying survives the round trip.
struct RandomRecolor {
    palette: usize,
}

impl Protocol for RandomRecolor {
    type State = usize;
    type Comm = usize;

    fn name(&self) -> &'static str {
        "random-recolor"
    }

    fn arbitrary_state(&self, _graph: &Graph, _p: NodeId, rng: &mut dyn RngCore) -> usize {
        rng.gen_range(0..self.palette)
    }

    fn comm(&self, _p: NodeId, state: &usize) -> usize {
        *state
    }

    fn is_enabled(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &usize,
        view: &NeighborView<'_, usize>,
    ) -> bool {
        (0..graph.degree(p)).any(|i| view.read(Port::new(i)) == state)
    }

    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &usize,
        view: &NeighborView<'_, usize>,
        rng: &mut dyn RngCore,
    ) -> Option<usize> {
        let taken: Vec<usize> = (0..graph.degree(p))
            .map(|i| *view.read(Port::new(i)))
            .collect();
        if !taken.contains(state) {
            return None;
        }
        let free: Vec<usize> = (0..self.palette).filter(|c| !taken.contains(c)).collect();
        if free.is_empty() {
            None
        } else {
            Some(free[rng.gen_range(0..free.len())])
        }
    }

    fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        8
    }

    fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        8
    }

    fn is_legitimate(&self, graph: &Graph, config: &[usize]) -> bool {
        graph.nodes().all(|p| {
            graph
                .neighbors(p)
                .all(|q| config[p.index()] != config[q.index()])
        })
    }
}

fn config_digest(config: &[usize]) -> u64 {
    let mut hasher = Fnv64::new();
    hasher.write_usize(config.len());
    for &state in config {
        hasher.write_usize(state);
    }
    hasher.finish()
}

/// The mid-run fault plan: injections landing between round boundaries
/// while earlier repairs are still in flight.
fn plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            at_step: 0,
            model: FaultModel::Uniform(FaultLoad::Fraction(0.25)),
        },
        FaultEvent {
            at_step: 17,
            model: FaultModel::StuckAt(FaultLoad::Count(3)),
        },
        FaultEvent {
            at_step: 43,
            model: FaultModel::Uniform(FaultLoad::Count(2)),
        },
    ])
}

const FAULT_RNG_SALT: u64 = 0xFA17;
const MAX_STEPS: u64 = 3_000;

/// Records one fault-recovery run under `scheduler` into a temp trace
/// file, replays it, and checks byte-identity of stats and config.
fn record_and_replay<S: Scheduler>(graph: &Graph, scheduler: S, seed: u64, daemon: &str) {
    let palette = graph.max_degree() + 2;
    let path = std::env::temp_dir().join(format!(
        "sstb_replay_{daemon}_{}_{}.trace",
        seed,
        std::process::id()
    ));

    // Record.
    let mut sim = Simulation::new(
        graph,
        RandomRecolor { palette },
        scheduler,
        seed,
        SimOptions::default(),
    );
    let sink = FileSink::create(
        &path,
        &TraceHeader {
            node_count: graph.node_count() as u64,
            seed,
            meta: format!("protocol=random-recolor;daemon={daemon};seed={seed}"),
        },
    )
    .expect("creates trace file");
    sim.attach_trace_sink(Box::new(sink));
    let mut injector = FaultInjector::new(graph);
    let mut rng = StdRng::seed_from_u64(seed ^ FAULT_RNG_SALT);
    run_fault_plan(&mut sim, &plan(), &mut injector, &mut rng, MAX_STEPS);
    let steps = sim.steps();
    assert!(steps > 0, "{daemon}: the scenario must execute steps");
    let recorded_stats: RunStats = sim.stats().clone();
    let stats_digest = recorded_stats.digest();
    let cfg_digest = config_digest(sim.config());
    let recorded_config = sim.config().to_vec();
    let mut sink = sim.detach_trace_sink().expect("sink attached");
    sink.finish(&TraceFooter {
        steps,
        stats_digest,
        config_digest: cfg_digest,
    })
    .expect("seals trace file");

    // Replay, with the deep per-step record comparison enabled
    // (`record_trace` makes the replay simulation rebuild each record and
    // diff it against the recording).
    let mut reader = TraceFileReader::open(&path).expect("opens trace file");
    let records = reader.read_to_end().expect("decodes step stream");
    let footer = *reader.footer().expect("footer after the stream");
    assert_eq!(footer.steps, steps, "{daemon}");

    let scenario = plan();
    let mut injector = FaultInjector::new(graph);
    let mut rng = StdRng::seed_from_u64(seed ^ FAULT_RNG_SALT);
    let mut next_event = 0;
    let outcome = replay_with(
        graph,
        RandomRecolor { palette },
        seed,
        SimOptions::default().with_trace(),
        records,
        |sim| {
            while next_event < scenario.events().len()
                && scenario.events()[next_event].at_step <= sim.steps()
            {
                injector.inject(sim, scenario.events()[next_event].model, &mut rng);
                next_event += 1;
            }
        },
    )
    .unwrap_or_else(|divergence| panic!("{daemon}: {divergence}"));

    assert_eq!(
        next_event,
        scenario.events().len(),
        "{daemon}: every recorded injection must fire during replay"
    );
    assert_eq!(outcome.steps, steps, "{daemon}: step count");
    assert_eq!(outcome.stats, recorded_stats, "{daemon}: RunStats equality");
    assert_eq!(outcome.config, recorded_config, "{daemon}: final config");
    assert_eq!(
        outcome.stats.digest(),
        footer.stats_digest,
        "{daemon}: stats digest vs footer"
    );
    assert_eq!(
        config_digest(&outcome.config),
        footer.config_digest,
        "{daemon}: config digest vs footer"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn record_replay_round_trips_under_every_daemon() {
    let ring = generators::ring(40);
    let grid = generators::grid(6, 6);

    record_and_replay(&ring, Synchronous, 11, "synchronous");
    record_and_replay(&ring, CentralRoundRobin::new(), 12, "central-round-robin");
    record_and_replay(&ring, CentralRandom::new(), 13, "central-random");
    record_and_replay(
        &ring,
        CentralRandom::enabled_only(),
        14,
        "central-random-enabled",
    );
    record_and_replay(&grid, DistributedRandom::new(0.4), 15, "distributed-random");
    record_and_replay(&grid, StarvingAdversary::new(), 16, "starving-adversary");
    let locally_central = LocallyCentral::new(&grid, 0.5);
    record_and_replay(&grid, locally_central, 17, "locally-central");
    record_and_replay(
        &ring,
        Fair::new(StarvingAdversary::new(), 8),
        18,
        "fair-starving",
    );
}

/// A truncated trace (no footer) and a doctored step stream must both be
/// reported, not silently replayed.
#[test]
fn corrupt_traces_are_rejected() {
    let ring = generators::ring(16);
    let seed = 5;
    let path =
        std::env::temp_dir().join(format!("sstb_replay_corrupt_{}.trace", std::process::id()));
    let mut sim = Simulation::new(
        &ring,
        RandomRecolor { palette: 4 },
        DistributedRandom::new(0.5),
        seed,
        SimOptions::default(),
    );
    let sink = FileSink::create(
        &path,
        &TraceHeader {
            node_count: 16,
            seed,
            meta: String::new(),
        },
    )
    .expect("creates");
    sim.attach_trace_sink(Box::new(sink));
    let mut injector = FaultInjector::new(&ring);
    let mut rng = StdRng::seed_from_u64(seed ^ FAULT_RNG_SALT);
    run_fault_plan(&mut sim, &plan(), &mut injector, &mut rng, MAX_STEPS);
    let steps = sim.steps();
    let mut sink = sim.detach_trace_sink().expect("attached");
    sink.finish(&TraceFooter {
        steps,
        stats_digest: sim.stats().digest(),
        config_digest: config_digest(sim.config()),
    })
    .expect("seals");

    // Truncation: drop the footer and half a record.
    let bytes = std::fs::read(&path).expect("reads");
    let truncated = &bytes[..bytes.len() - 20];
    let trunc_path = path.with_extension("truncated");
    std::fs::write(&trunc_path, truncated).expect("writes");
    let mut reader = TraceFileReader::open(&trunc_path).expect("header still valid");
    let result = reader.read_to_end();
    assert!(
        result.is_err() || reader.footer().is_none(),
        "a truncated stream must not produce a sealed footer"
    );

    // Replaying under the wrong seed must diverge (the executed sets
    // cannot match the recording's RNG stream).
    let mut reader = TraceFileReader::open(&path).expect("opens");
    let records = reader.read_to_end().expect("decodes");
    let scenario = plan();
    let mut injector = FaultInjector::new(&ring);
    let mut wrong_rng = StdRng::seed_from_u64((seed + 1) ^ FAULT_RNG_SALT);
    let mut next_event = 0;
    let result = replay_with(
        &ring,
        RandomRecolor { palette: 4 },
        seed + 1,
        SimOptions::default(),
        records,
        |sim| {
            while next_event < scenario.events().len()
                && scenario.events()[next_event].at_step <= sim.steps()
            {
                injector.inject(sim, scenario.events()[next_event].model, &mut wrong_rng);
                next_event += 1;
            }
        },
    );
    assert!(
        result.is_err(),
        "replaying under a different seed must report a divergence"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trunc_path).ok();
}

//! Property tests over the telemetry wire format and the trace
//! accumulators.
//!
//! * Arbitrary [`StepRecord`] sequences — empty steps, backwards step
//!   jumps, duplicate and unsorted process ids, maximum-degree read
//!   lists, `u32`-boundary node ids — must round-trip byte-exactly
//!   through [`MemorySink`]'s delta/varint encoding.
//! * [`Trace::stable_process_count`]'s single-pass accumulation must
//!   agree with the original per-process re-scan (reimplemented naively
//!   here) on arbitrary traces.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfstab_graph::{NodeId, Port};
use selfstab_runtime::trace::{ActivationRecord, StepRecord, Trace};
use selfstab_runtime::MemorySink;
use selfstab_runtime::TraceSink;

/// Builds a deterministic, deliberately adversarial record sequence from
/// one sampled seed. The shapes this must cover (the proptest stub only
/// supports range strategies, so the structure comes from an inner RNG):
///
/// * empty steps (no activations),
/// * step indices that jump backwards and forwards (zigzag deltas),
/// * unsorted, duplicated process ids (including `NodeId::MAX_INDEX`),
/// * ascending read lists (bitmap encoding) and shuffled/duplicated read
///   lists (delta-list encoding), up to max-degree width.
fn arbitrary_records(seed: u64, steps: usize) -> Vec<StepRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut step = rng.gen_range(0..1_000u64);
    let mut records = Vec::with_capacity(steps);
    for _ in 0..steps {
        // Jump forwards usually, backwards sometimes, occasionally to an
        // extreme index.
        step = match rng.gen_range(0..10u32) {
            0 => step.wrapping_sub(rng.gen_range(0..50u64)),
            1 => u64::MAX - rng.gen_range(0..3u64),
            _ => step.wrapping_add(rng.gen_range(0..9u64)),
        };
        let activation_count = match rng.gen_range(0..8u32) {
            0 | 1 => 0, // empty steps are common under sparse daemons
            2 => rng.gen_range(1..40usize),
            _ => rng.gen_range(1..6usize),
        };
        let mut activations = Vec::with_capacity(activation_count);
        for _ in 0..activation_count {
            let process = match rng.gen_range(0..12u32) {
                0 => NodeId::MAX_INDEX,
                1 => NodeId::MAX_INDEX - rng.gen_range(1..4usize),
                2 if !activations.is_empty() => {
                    // Duplicate an earlier process id (unsorted repeat).
                    let prev: &ActivationRecord = &activations[0];
                    prev.process.index()
                }
                _ => rng.gen_range(0..64usize),
            };
            let reads = match rng.gen_range(0..6u32) {
                // Strictly ascending → bitmap-eligible.
                0 => {
                    let len = rng.gen_range(0..16usize);
                    let mut port = 0usize;
                    (0..len)
                        .map(|_| {
                            port += rng.gen_range(1..5usize);
                            Port::new(port)
                        })
                        .collect()
                }
                // Max-degree wide, descending first-touch order.
                1 => {
                    let degree = rng.gen_range(200..600usize);
                    (0..degree).rev().map(Port::new).collect()
                }
                // Short list with duplicates, arbitrary order.
                2 | 3 => {
                    let len = rng.gen_range(1..10usize);
                    (0..len)
                        .map(|_| Port::new(rng.gen_range(0..7usize)))
                        .collect()
                }
                _ => Vec::new(),
            };
            activations.push(ActivationRecord {
                process: NodeId::new(process),
                executed: rng.gen_bool(0.5),
                reads,
                comm_changed: rng.gen_bool(0.3),
            });
        }
        records.push(StepRecord { step, activations });
    }
    records
}

/// The historical `stable_process_count`: rebuild each process's suffix
/// read set independently with a linear `contains` probe, then count.
fn naive_stable_process_count(trace: &Trace, n: usize, k: usize, from_step: u64) -> usize {
    (0..n)
        .filter(|&p| {
            let mut ports: Vec<Port> = Vec::new();
            for record in trace.steps() {
                if record.step < from_step {
                    continue;
                }
                for activation in &record.activations {
                    if activation.process.index() != p {
                        continue;
                    }
                    for &port in &activation.reads {
                        if !ports.contains(&port) {
                            ports.push(port);
                        }
                    }
                }
            }
            ports.len() <= k
        })
        .count()
}

/// Builds a trace whose activations stay within `n` processes *except*
/// for a few out-of-range ids, which `stable_process_count` must skip.
fn arbitrary_trace(seed: u64, steps: usize, n: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::new();
    for step in 0..steps as u64 {
        let activation_count = rng.gen_range(0..4usize);
        let activations = (0..activation_count)
            .map(|_| {
                let reads_len = rng.gen_range(0..5usize);
                ActivationRecord {
                    // n + 3 occasionally lands out of range — those
                    // activations must not contribute to any count.
                    process: NodeId::new(rng.gen_range(0..n + 3)),
                    executed: rng.gen_bool(0.7),
                    reads: (0..reads_len)
                        .map(|_| Port::new(rng.gen_range(0..6usize)))
                        .collect(),
                    comm_changed: rng.gen_bool(0.2),
                }
            })
            .collect();
        trace.push(StepRecord { step, activations });
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_round_trips_arbitrary_record_sequences(
        seed in 0u64..1_000_000,
        steps in 0usize..40,
    ) {
        let records = arbitrary_records(seed, steps);
        let mut sink = MemorySink::new();
        for record in &records {
            sink.record_step(record);
        }
        prop_assert_eq!(sink.steps(), records.len() as u64);
        let decoded = sink.decode_all().expect("generated streams are well-formed");
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn stable_process_count_matches_naive_rescan(
        seed in 0u64..1_000_000,
        steps in 0usize..30,
        n in 1usize..12,
        k in 0usize..8,
        from_step in 0u64..20,
    ) {
        let trace = arbitrary_trace(seed, steps, n);
        prop_assert_eq!(
            trace.stable_process_count(n, k, from_step),
            naive_stable_process_count(&trace, n, k, from_step)
        );
    }
}

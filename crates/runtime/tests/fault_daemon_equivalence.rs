//! Mid-round fault injection keeps the incremental enabled set sound,
//! under every daemon.
//!
//! [`Simulation::set_state`] mutates configuration outside the normal
//! activation path; its dirty-marking (victim + whole neighborhood) must
//! leave the maintained enabled set equal to a from-scratch recomputation
//! regardless of *when* the injection lands and *which* daemon drives the
//! run. Two daemons carry extra cross-step state that an injection does
//! not pass through — [`LocallyCentral`] holds its shuffle scratch across
//! steps, and [`Fair`]'s window bookkeeping never sees the injected
//! process as "selected" — so this regression test drives an incremental
//! executor and a [`SimOptions::with_full_recompute`] reference in
//! lockstep, injecting the same faults **mid-round**, and asserts after
//! every injection and every step that the two agree on the enabled
//! flags, the configuration, and the observable statistics.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use selfstab_graph::{generators, Graph, NodeId, Port};
use selfstab_runtime::faults::{BallCenter, FaultInjector, FaultLoad, FaultModel};
use selfstab_runtime::protocol::Protocol;
use selfstab_runtime::scheduler::{
    CentralRandom, CentralRoundRobin, DistributedRandom, Fair, LocallyCentral, Scheduler,
    StarvingAdversary, Synchronous,
};
use selfstab_runtime::view::NeighborView;
use selfstab_runtime::{SimOptions, Simulation};

/// Minimum-propagation protocol (the executor test workhorse): guards read
/// every neighbor, so every injection flips guards across the whole
/// victim neighborhood — the worst case for dirty-marking.
struct MinValue;

impl Protocol for MinValue {
    type State = u32;
    type Comm = u32;

    fn name(&self) -> &'static str {
        "min-value"
    }

    fn arbitrary_state(&self, _graph: &Graph, _p: NodeId, rng: &mut dyn RngCore) -> u32 {
        rand::Rng::gen_range(rng, 0..1000)
    }

    fn comm(&self, _p: NodeId, state: &u32) -> u32 {
        *state
    }

    fn is_enabled(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
    ) -> bool {
        (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
    }

    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
        _rng: &mut dyn RngCore,
    ) -> Option<u32> {
        let min = (0..graph.degree(p))
            .map(|i| *view.read(Port::new(i)))
            .min()
            .unwrap_or(*state);
        (min < *state).then_some(min)
    }

    fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
        let min = config.iter().min().copied().unwrap_or(0);
        config.iter().all(|&v| v == min)
    }
}

/// The structured fault models an injection cycle rotates through.
fn models() -> [FaultModel; 4] {
    [
        FaultModel::Uniform(FaultLoad::Count(2)),
        FaultModel::DegreeTargeted(FaultLoad::Count(2)),
        FaultModel::Ball {
            center: BallCenter::Random,
            radius: 1,
        },
        FaultModel::StuckAt(FaultLoad::Count(1)),
    ]
}

/// Drives the incremental executor and the full-recompute reference in
/// lockstep under one daemon, injecting identical faults mid-round, and
/// asserts the enabled sets (and every observable) never diverge.
fn assert_fault_equivalence<S: Scheduler>(graph: &Graph, make: impl Fn() -> S, daemon: &str) {
    let seed = 0xFA017;
    let mut fast = Simulation::new(graph, MinValue, make(), seed, SimOptions::default());
    let mut reference = Simulation::new(
        graph,
        MinValue,
        make(),
        seed,
        SimOptions::default().with_full_recompute(),
    );
    let mut fast_injector = FaultInjector::new(graph);
    let mut reference_injector = FaultInjector::new(graph);
    let mut fast_rng = StdRng::seed_from_u64(99);
    let mut reference_rng = StdRng::seed_from_u64(99);

    let models = models();
    for cycle in 0..12usize {
        // 7 steps between injections: coprime with every round length in
        // play, so injections keep landing mid-round (verified below to
        // actually happen at least once per daemon).
        for _ in 0..7 {
            fast.step();
            reference.step();
            assert_eq!(
                fast.enabled_set().as_flags(),
                reference.enabled_set().as_flags(),
                "{daemon}: enabled sets diverged while stepping (cycle {cycle})"
            );
        }
        let model = models[cycle % models.len()];
        let fast_victims = fast_injector
            .inject(&mut fast, model, &mut fast_rng)
            .to_vec();
        let reference_victims = reference_injector
            .inject(&mut reference, model, &mut reference_rng)
            .to_vec();
        assert_eq!(
            fast_victims, reference_victims,
            "{daemon}: victim selection must be executor-independent"
        );
        assert_eq!(
            fast.config(),
            reference.config(),
            "{daemon}: configurations diverged right after injection (cycle {cycle}, {model})"
        );
        // The heart of the regression: the post-injection enabled set of
        // the incremental executor equals the full recomputation's.
        assert_eq!(
            fast.enabled_set().as_flags(),
            reference.enabled_set().as_flags(),
            "{daemon}: post-injection enabled set diverged (cycle {cycle}, {model})"
        );
    }
    // After the storm, both runs settle to the same silent point with the
    // same observable statistics.
    let fast_report = fast.run_until_silent(100_000);
    let reference_report = reference.run_until_silent(100_000);
    assert_eq!(fast_report, reference_report, "{daemon}: reports diverged");
    assert!(fast_report.silent, "{daemon}: must re-stabilize");
    assert_eq!(fast.config(), reference.config());
    assert_eq!(fast.stats(), reference.stats(), "{daemon}: stats diverged");
}

#[test]
fn post_injection_enabled_set_matches_full_recompute_under_every_daemon() {
    let grid = generators::grid(4, 5);
    assert_fault_equivalence(&grid, || Synchronous, "synchronous");
    assert_fault_equivalence(&grid, CentralRoundRobin::new, "central-round-robin");
    assert_fault_equivalence(&grid, CentralRandom::enabled_only, "central-random-enabled");
    assert_fault_equivalence(&grid, || DistributedRandom::new(0.4), "distributed-random");
    // The two daemons the audit singled out: LocallyCentral holds shuffle
    // scratch across steps; Fair's window bookkeeping never marks injected
    // processes as selected.
    assert_fault_equivalence(&grid, || LocallyCentral::new(&grid, 0.5), "locally-central");
    assert_fault_equivalence(
        &grid,
        || Fair::new(DistributedRandom::new(0.05), 4),
        "fair(distributed-random)",
    );
    assert_fault_equivalence(
        &grid,
        || Fair::new(StarvingAdversary::new(), 3),
        "fair(starving-adversary)",
    );
}

#[test]
fn injections_do_land_mid_round() {
    // Sanity for the test above: with 7 steps per cycle under a one-
    // process-per-step daemon on 20 processes, injections land strictly
    // inside rounds (not at boundaries) — the timing the dirty-marking
    // audit is about.
    let graph = generators::grid(4, 5);
    let mut sim = Simulation::new(
        &graph,
        MinValue,
        CentralRoundRobin::new(),
        1,
        SimOptions::default(),
    );
    let mut mid_round = 0u32;
    for _ in 0..12 {
        sim.run_steps(7);
        if !sim.steps().is_multiple_of(graph.node_count() as u64) {
            mid_round += 1;
        }
        sim.set_state(NodeId::new(3), 0);
    }
    assert!(mid_round >= 10, "injections overwhelmingly land mid-round");
}

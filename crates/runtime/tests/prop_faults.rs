//! Property tests for fault-model determinism.
//!
//! The campaign engine's thread-count independence rests on every cell
//! being a pure function of its grid point and seed; fault scenarios add
//! victim selection, adversarial state search and plan execution to a
//! cell, so all of it must be a pure function of `(graph, model, seed)`:
//! same seed ⇒ same victims and same post-injection states, regardless of
//! injector reuse history or how many scenarios ran before on *other*
//! injectors (each cell builds its own).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use selfstab_graph::{generators, Graph, NodeId, Port};
use selfstab_runtime::faults::{
    run_fault_plan, BallCenter, FaultInjector, FaultLoad, FaultModel, FaultPlan,
};
use selfstab_runtime::protocol::Protocol;
use selfstab_runtime::scheduler::Synchronous;
use selfstab_runtime::view::NeighborView;
use selfstab_runtime::{SimOptions, Simulation};

struct MinValue;

impl Protocol for MinValue {
    type State = u32;
    type Comm = u32;

    fn name(&self) -> &'static str {
        "min-value"
    }

    fn arbitrary_state(&self, _graph: &Graph, _p: NodeId, rng: &mut dyn RngCore) -> u32 {
        rand::Rng::gen_range(rng, 0..1000)
    }

    fn comm(&self, _p: NodeId, state: &u32) -> u32 {
        *state
    }

    fn is_enabled(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
    ) -> bool {
        (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
    }

    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
        _rng: &mut dyn RngCore,
    ) -> Option<u32> {
        let min = (0..graph.degree(p))
            .map(|i| *view.read(Port::new(i)))
            .min()
            .unwrap_or(*state);
        (min < *state).then_some(min)
    }

    fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
        let min = config.iter().min().copied().unwrap_or(0);
        config.iter().all(|&v| v == min)
    }
}

/// Strategy over the fault-model space.
fn model() -> impl Strategy<Value = FaultModel> {
    (0usize..4, 1usize..6, 0usize..3, 1u32..60).prop_map(|(kind, count, radius, pct)| match kind {
        0 => FaultModel::Uniform(FaultLoad::Fraction(f64::from(pct) / 100.0)),
        1 => FaultModel::DegreeTargeted(FaultLoad::Count(count)),
        2 => FaultModel::Ball {
            center: if count % 2 == 0 {
                BallCenter::Random
            } else {
                BallCenter::Hub
            },
            radius,
        },
        _ => FaultModel::StuckAt(FaultLoad::Count(count)),
    })
}

/// Strategy over small workload topologies.
fn graph() -> impl Strategy<Value = Graph> {
    (0usize..4, 6usize..20).prop_map(|(family, n)| match family {
        0 => generators::ring(n),
        1 => generators::star(n),
        2 => generators::grid(3, (n / 3).max(2)),
        _ => generators::random_tree(n, &mut StdRng::seed_from_u64(n as u64)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_seed_same_victims_and_states(m in model(), g in graph(), seed in 0u64..10_000) {
        // Two independent injector/sim/rng stacks with the same seed must
        // corrupt the same processes with the same states.
        let run = |_| {
            let mut sim = Simulation::with_config(
                &g,
                MinValue,
                Synchronous,
                vec![500; g.node_count()],
                seed,
                SimOptions::default(),
            );
            let mut injector = FaultInjector::new(&g);
            let mut rng = StdRng::seed_from_u64(seed);
            let victims = injector.inject(&mut sim, m, &mut rng).to_vec();
            (victims, sim.config().to_vec())
        };
        let (victims_a, config_a) = run(0);
        let (victims_b, config_b) = run(1);
        prop_assert_eq!(victims_a, victims_b);
        prop_assert_eq!(config_a, config_b);
    }

    #[test]
    fn injector_reuse_does_not_change_selection_distribution_shape(
        m in model(), seed in 0u64..10_000,
    ) {
        // A fresh injector and a heavily reused one agree once their rngs
        // are aligned: selection depends only on (graph, model, rng
        // stream), never on pool history. (The pool is a permutation; any
        // permutation is an equally valid partial-Fisher–Yates start, and
        // the rng draws are what pick the victims.)
        let g = generators::ring(16);
        let mut fresh = FaultInjector::new(&g);
        let mut reused = FaultInjector::new(&g);
        // Scramble the reused injector's pool with a throwaway rng.
        let mut scramble_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        for _ in 0..5 {
            reused.select_victims(&g, FaultModel::Uniform(FaultLoad::Count(7)), &mut scramble_rng);
        }
        match m {
            FaultModel::DegreeTargeted(_) | FaultModel::Ball { center: BallCenter::Hub, .. } => {
                // Deterministic models must agree exactly, history or not.
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let a = fresh.select_victims(&g, m, &mut rng_a).to_vec();
                let b = reused.select_victims(&g, m, &mut rng_b).to_vec();
                prop_assert_eq!(a, b);
            }
            _ => {
                // Randomized models: victim count is history-independent.
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let a = fresh.select_victims(&g, m, &mut rng_a).len();
                let b = reused.select_victims(&g, m, &mut rng_b).len();
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn whole_scenario_runs_are_seed_deterministic(
        m in model(), seed in 0u64..10_000, period in 1u64..10,
    ) {
        // The full plan driver — injections, stepping, telemetry — must be
        // byte-equal across two executions of the same (graph, plan, seed):
        // exactly what makes fault plans a safe campaign axis.
        let g = generators::grid(4, 4);
        let plan = FaultPlan::periodic(m, period, 2);
        let run = |_| {
            let mut sim = Simulation::new(&g, MinValue, Synchronous, seed, SimOptions::default());
            sim.run_until_silent(10_000);
            let mut injector = FaultInjector::new(&g);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFA);
            let telemetry = run_fault_plan(&mut sim, &plan, &mut injector, &mut rng, 10_000);
            (telemetry, sim.config().to_vec())
        };
        let (telemetry_a, config_a) = run(0);
        let (telemetry_b, config_b) = run(1);
        prop_assert_eq!(telemetry_a, telemetry_b);
        prop_assert_eq!(config_a, config_b);
    }
}

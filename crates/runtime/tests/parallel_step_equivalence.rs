//! The sharded intra-step executor is observably identical to the
//! sequential one, at every worker count, under every daemon.
//!
//! The executor shards the graph into contiguous node partitions and runs
//! guard evaluation and activation staging per shard (on worker threads
//! when `step_workers > 1`), then merges the per-shard results in shard
//! order. Nothing about that reorganization may be observable: this
//! regression test drives a sequential baseline (`step_workers = 1`) and
//! sharded executors at 2, 4 and 8 workers in lockstep — with the work
//! threshold forced to zero so the threaded dispatch path actually runs on
//! these small graphs — and asserts after every step and every mid-round
//! fault injection that the enabled flags, the [`StepOutcome`], the
//! configuration, and the full [`RunStats`] (including the per-port read
//! footprints behind the paper's k-efficiency measures) never diverge.
//!
//! The protocol draws from its activation RNG, so the test also locks down
//! the worker-count-invariant per-activation RNG derivation: if worker
//! count ever leaked into the random streams, configurations would split
//! at the first randomized activation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use selfstab_graph::{generators, Graph, NodeId, Port};
use selfstab_runtime::faults::{BallCenter, FaultInjector, FaultLoad, FaultModel};
use selfstab_runtime::protocol::Protocol;
use selfstab_runtime::scheduler::{
    CentralRandom, CentralRoundRobin, DistributedRandom, Fair, LocallyCentral, Scheduler,
    StarvingAdversary, Synchronous,
};
use selfstab_runtime::view::NeighborView;
use selfstab_runtime::{SimOptions, Simulation};

/// Minimum propagation with randomized over-write: disabled processes may
/// still be selected, and enabled ones draw from the activation RNG to
/// decide between two equivalent descents. Guards read every neighbor, so
/// every fault flips guards across the whole victim neighborhood — the
/// worst case for per-shard dirty routing — and the RNG draw makes any
/// worker-count leakage into the random streams immediately visible.
struct NoisyMin;

impl Protocol for NoisyMin {
    type State = u32;
    type Comm = u32;

    fn name(&self) -> &'static str {
        "noisy-min"
    }

    fn arbitrary_state(&self, _graph: &Graph, _p: NodeId, rng: &mut dyn RngCore) -> u32 {
        rand::Rng::gen_range(rng, 0..1000)
    }

    fn comm(&self, _p: NodeId, state: &u32) -> u32 {
        *state
    }

    fn is_enabled(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
    ) -> bool {
        (0..graph.degree(p)).any(|i| view.read(Port::new(i)) < state)
    }

    fn activate(
        &self,
        graph: &Graph,
        p: NodeId,
        state: &u32,
        view: &NeighborView<'_, u32>,
        rng: &mut dyn RngCore,
    ) -> Option<u32> {
        let min = (0..graph.degree(p))
            .map(|i| *view.read(Port::new(i)))
            .min()
            .unwrap_or(*state);
        if min >= *state {
            return None;
        }
        // Descend to the neighborhood minimum, or (with probability 1/2,
        // drawn from the per-activation RNG) overshoot-then-correct via
        // min itself plus a derived bit — both choices keep convergence,
        // but the drawn bit lands in the communication variable, so any
        // divergence in RNG streams becomes a configuration divergence.
        let jitter = (rng.next_u64() & 1) as u32;
        Some(min.saturating_sub(jitter.min(min)))
    }

    fn comm_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn state_bits(&self, _graph: &Graph, _p: NodeId) -> u64 {
        32
    }

    fn is_legitimate(&self, _graph: &Graph, config: &[u32]) -> bool {
        let min = config.iter().min().copied().unwrap_or(0);
        config.iter().all(|&v| v == min)
    }
}

/// The structured fault models an injection cycle rotates through
/// (mirrors `fault_daemon_equivalence.rs`).
fn models() -> [FaultModel; 4] {
    [
        FaultModel::Uniform(FaultLoad::Count(2)),
        FaultModel::DegreeTargeted(FaultLoad::Count(2)),
        FaultModel::Ball {
            center: BallCenter::Random,
            radius: 1,
        },
        FaultModel::StuckAt(FaultLoad::Count(1)),
    ]
}

/// One executor under test plus its private fault stream (identically
/// seeded across all executors, so victims must match).
struct Lane<'g, S: Scheduler> {
    workers: usize,
    sim: Simulation<'g, NoisyMin, S>,
    injector: FaultInjector,
    fault_rng: StdRng,
}

/// Drives the sequential baseline and the sharded executors at 2, 4 and 8
/// workers in lockstep under one daemon, injecting identical faults
/// mid-round, and asserts that no observable ever diverges.
fn assert_parallel_equivalence<S: Scheduler>(graph: &Graph, make: impl Fn() -> S, daemon: &str) {
    let seed = 0x5AA27;
    let lane = |workers: usize| {
        let options = SimOptions::default()
            .with_step_workers(workers)
            // Force the threaded dispatch path: the production threshold
            // would keep these deliberately small graphs sequential.
            .with_parallel_work_threshold(0);
        Lane {
            workers,
            sim: Simulation::new(graph, NoisyMin, make(), seed, options),
            injector: FaultInjector::new(graph),
            fault_rng: StdRng::seed_from_u64(99),
        }
    };
    let mut baseline = lane(1);
    let mut sharded: Vec<Lane<'_, S>> = [2, 4, 8].map(lane).into_iter().collect();

    let models = models();
    for cycle in 0..12usize {
        // 7 steps between injections: coprime with every round length in
        // play, so injections keep landing mid-round.
        for step in 0..7 {
            let expected_outcome = baseline.sim.step();
            for lane in &mut sharded {
                let outcome = lane.sim.step();
                let workers = lane.workers;
                assert_eq!(
                    outcome, expected_outcome,
                    "{daemon}/workers={workers}: step outcome diverged (cycle {cycle}, step {step})"
                );
                assert_eq!(
                    lane.sim.last_selected(),
                    baseline.sim.last_selected(),
                    "{daemon}/workers={workers}: selected list diverged (cycle {cycle}, step {step})"
                );
                assert_eq!(
                    lane.sim.last_executed(),
                    baseline.sim.last_executed(),
                    "{daemon}/workers={workers}: executed list diverged (cycle {cycle}, step {step})"
                );
                assert_eq!(
                    lane.sim.config(),
                    baseline.sim.config(),
                    "{daemon}/workers={workers}: configuration diverged (cycle {cycle}, step {step})"
                );
                let expected_flags = baseline.sim.enabled_set().as_flags().to_vec();
                assert_eq!(
                    lane.sim.enabled_set().as_flags(),
                    expected_flags,
                    "{daemon}/workers={workers}: enabled flags diverged (cycle {cycle}, step {step})"
                );
            }
        }
        let model = models[cycle % models.len()];
        let expected_victims = baseline
            .injector
            .inject(&mut baseline.sim, model, &mut baseline.fault_rng)
            .to_vec();
        for lane in &mut sharded {
            let victims = lane
                .injector
                .inject(&mut lane.sim, model, &mut lane.fault_rng)
                .to_vec();
            let workers = lane.workers;
            assert_eq!(
                victims, expected_victims,
                "{daemon}/workers={workers}: victim selection must be worker-count-independent"
            );
            assert_eq!(
                lane.sim.config(),
                baseline.sim.config(),
                "{daemon}/workers={workers}: configurations diverged after injection (cycle {cycle}, {model})"
            );
            // The heart of the regression: mid-round injections mark dirty
            // nodes straight into per-shard queues; the maintained enabled
            // set must still match the sequential executor's.
            let expected_flags = baseline.sim.enabled_set().as_flags().to_vec();
            assert_eq!(
                lane.sim.enabled_set().as_flags(),
                expected_flags,
                "{daemon}/workers={workers}: post-injection enabled set diverged (cycle {cycle}, {model})"
            );
            assert_eq!(
                lane.sim.stats(),
                baseline.sim.stats(),
                "{daemon}/workers={workers}: stats diverged after injection (cycle {cycle}, {model})"
            );
        }
    }
    // After the storm, every executor settles to the same silent point
    // with the same observable statistics, in the same number of steps.
    let expected_report = baseline.sim.run_until_silent(100_000);
    assert!(
        expected_report.silent,
        "{daemon}: baseline must re-stabilize"
    );
    for lane in &mut sharded {
        let report = lane.sim.run_until_silent(100_000);
        let workers = lane.workers;
        assert_eq!(
            report, expected_report,
            "{daemon}/workers={workers}: reports diverged"
        );
        assert_eq!(lane.sim.config(), baseline.sim.config());
        assert_eq!(
            lane.sim.stats(),
            baseline.sim.stats(),
            "{daemon}/workers={workers}: final stats diverged"
        );
    }
}

#[test]
fn sharded_executor_matches_sequential_under_every_daemon() {
    let grid = generators::grid(4, 5);
    assert_parallel_equivalence(&grid, || Synchronous, "synchronous");
    assert_parallel_equivalence(&grid, CentralRoundRobin::new, "central-round-robin");
    assert_parallel_equivalence(&grid, CentralRandom::enabled_only, "central-random-enabled");
    assert_parallel_equivalence(&grid, || DistributedRandom::new(0.4), "distributed-random");
    assert_parallel_equivalence(&grid, || LocallyCentral::new(&grid, 0.5), "locally-central");
    assert_parallel_equivalence(
        &grid,
        || Fair::new(DistributedRandom::new(0.05), 4),
        "fair(distributed-random)",
    );
    assert_parallel_equivalence(
        &grid,
        || Fair::new(StarvingAdversary::new(), 3),
        "fair(starving-adversary)",
    );
}

#[test]
fn sharded_executor_matches_sequential_on_irregular_topologies() {
    // Degree-skewed graphs stress the degree-weighted partition cuts: the
    // hub of a star and the tail of a barabasi-albert graph land in
    // different shards at different worker counts.
    let ba = generators::barabasi_albert(60, 3, &mut StdRng::seed_from_u64(7))
        .expect("valid barabasi-albert parameters");
    let topologies = [("star-24", generators::star(24)), ("ba-60", ba)];
    for (name, graph) in &topologies {
        assert_parallel_equivalence(graph, || Synchronous, &format!("{name}/synchronous"));
        assert_parallel_equivalence(
            graph,
            || DistributedRandom::new(0.3),
            &format!("{name}/distributed-random"),
        );
    }
}

#[test]
fn more_workers_than_nodes_degrades_gracefully() {
    // 8 workers on a 6-node ring: the partition clamps to nonempty shards
    // (fewer shards than requested workers) and must still agree with the
    // sequential executor all the way to silence.
    let ring = generators::ring(6);
    assert_parallel_equivalence(&ring, || Synchronous, "tiny-ring/synchronous");
    assert_parallel_equivalence(
        &ring,
        CentralRoundRobin::new,
        "tiny-ring/central-round-robin",
    );
}

//! Scenario: TDMA-style slot assignment in a sensor grid.
//!
//! A wireless sensor deployment wants neighboring nodes to transmit in
//! different time slots; slots are exactly colors, so the paper's
//! 1-efficient COLORING protocol solves the problem while letting every
//! sensor listen to only **one** neighbor per wake-up — the headline saving
//! for battery-powered radios. The example also injects a burst of
//! transient memory faults and shows the protocol re-stabilizing.
//!
//! ```text
//! cargo run --example sensor_slot_assignment
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab::prelude::*;
use selfstab_core::coloring::Coloring;
use selfstab_runtime::faults;

fn count_conflicts(graph: &Graph, colors: &[usize]) -> usize {
    graph
        .edges()
        .filter(|&(a, b)| colors[a.index()] == colors[b.index()])
        .count()
}

fn main() {
    // A 6x6 sensor grid: 36 sensors, ∆ = 4, so 5 slots suffice.
    let graph = generators::grid(6, 6);
    let protocol = Coloring::new(&graph);
    println!(
        "deployment: {graph}, slots available: {}",
        protocol.palette()
    );

    let mut sim = Simulation::new(
        &graph,
        protocol,
        DistributedRandom::new(0.4),
        11,
        SimOptions::default(),
    );
    let report = sim.run_until_silent(5_000_000);
    let colors = Coloring::output(sim.config());
    println!(
        "initial convergence: silent = {}, rounds = {}, conflicts = {}",
        report.silent,
        report.total_rounds,
        count_conflicts(&graph, &colors)
    );
    println!(
        "per wake-up, every sensor reads exactly {} neighbor register(s)",
        sim.stats().measured_efficiency()
    );

    // A lightning strike scrambles the memory of a quarter of the sensors.
    let mut rng = StdRng::seed_from_u64(99);
    let victims = faults::inject_random_faults(&mut sim, graph.node_count() / 4, &mut rng);
    let colors = Coloring::output(sim.config());
    println!(
        "\ntransient fault hits {} sensors -> {} slot conflicts appear",
        victims.len(),
        count_conflicts(&graph, &colors)
    );

    let rounds_before = sim.rounds();
    let report = sim.run_until_silent(5_000_000);
    let colors = Coloring::output(sim.config());
    println!(
        "self-stabilization: recovered in {} rounds, conflicts = {}, proper = {}",
        sim.rounds() - rounds_before,
        count_conflicts(&graph, &colors),
        report.legitimate
    );

    // Print the final slot map row by row.
    println!("\nfinal slot assignment (rows of the grid):");
    for row in 0..6 {
        let slots: Vec<String> = (0..6)
            .map(|col| colors[row * 6 + col].to_string())
            .collect();
        println!("  {}", slots.join(" "));
    }
}

//! Memory-footprint smoke for the struct-of-arrays state layout.
//!
//! Stabilizes MIS on a ring of 10⁶ processes under the synchronous daemon
//! with the columnar (`--soa-layout`, the default here) store, drives a
//! short silent-stepping burst, and prints the measured per-node heap
//! footprint of the state and communication stores. CI runs the prebuilt
//! release binary under `/usr/bin/time -v` and asserts the peak RSS
//! against a committed ceiling, so layout regressions that re-inflate
//! per-node memory fail the build.
//!
//! ```text
//! cargo build --release --example soa_footprint
//! /usr/bin/time -v ./target/release/examples/soa_footprint
//! ```
//!
//! Pass `--aos` to measure the array-of-structs baseline instead.

use selfstab::prelude::*;

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`, the
/// same counter `time -v` reports as "Maximum resident set size").
/// Returns 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches(" kB")
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

fn main() {
    let aos = std::env::args().any(|a| a == "--aos");
    let n = 1_000_000usize;
    let graph = generators::ring(n);
    let options = if aos {
        SimOptions::default()
    } else {
        SimOptions::default().with_soa_layout()
    };
    let mut sim = Simulation::new(
        &graph,
        Mis::with_greedy_coloring(&graph),
        Synchronous,
        0xC0FFEE,
        options,
    );
    let report = sim.run_until_silent(10_000);
    assert!(report.silent, "MIS must stabilize on the ring");
    // A short silent burst so the peak covers the steady-state step path,
    // not just stabilization.
    for _ in 0..64 {
        sim.step();
    }
    let (state_bytes, comm_bytes) = sim.store_heap_bytes();
    println!(
        "layout={} n={n} steps-to-silence={} state={:.2}B/node comm={:.2}B/node peak-rss={}kB",
        if aos { "aos" } else { "soa" },
        report.total_steps,
        state_bytes as f64 / n as f64,
        comm_bytes as f64 / n as f64,
        peak_rss_kb(),
    );
}

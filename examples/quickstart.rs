//! Quickstart: run the three 1-efficient protocols of the paper on a small
//! random network and print what they compute and what they cost.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab::prelude::*;
use selfstab_core::measures;

fn main() {
    // A connected random network of 24 processes.
    let mut rng = StdRng::seed_from_u64(2024);
    let graph = generators::gnp_connected(24, 0.15, &mut rng).expect("valid G(n,p) parameters");
    println!("network: {graph}");

    // 1. (∆+1)-coloring with the probabilistic 1-efficient COLORING protocol.
    let outcome = selfstab::run_coloring(&graph, 1, 5_000_000).expect("stabilizes w.p. 1");
    println!(
        "\nCOLORING   : proper = {}, colors used = {}, steps = {}, rounds = {}, k = {}",
        verify::is_proper_coloring(&graph, &outcome.colors),
        {
            let mut c = outcome.colors.clone();
            c.sort_unstable();
            c.dedup();
            c.len()
        },
        outcome.steps,
        outcome.rounds,
        outcome.measured_efficiency,
    );

    // 2. Maximal independent set with the deterministic 1-efficient MIS.
    let outcome = selfstab::run_mis(&graph, 2, 5_000_000).expect("stabilizes");
    println!(
        "MIS        : maximal independent set = {}, |set| = {}, steps = {}, k = {}",
        verify::is_maximal_independent_set(&graph, &outcome.output),
        outcome.output.iter().filter(|&&b| b).count(),
        outcome.steps,
        outcome.measured_efficiency,
    );

    // 3. Maximal matching with the deterministic 1-efficient MATCHING.
    let outcome = selfstab::run_matching(&graph, 3, 5_000_000).expect("stabilizes");
    println!(
        "MATCHING   : maximal matching = {}, |matching| = {}, steps = {}, k = {}",
        verify::is_maximal_matching(&graph, &outcome.output),
        outcome.output.len(),
        outcome.steps,
        outcome.measured_efficiency,
    );

    // 4. What did 1-efficiency buy? Compare per-step communication with the
    //    classical Δ-efficient local-checking strategy (Definition 5).
    let protocol = Coloring::new(&graph);
    let mut sim = Simulation::new(
        &graph,
        protocol,
        DistributedRandom::new(0.5),
        7,
        SimOptions::default(),
    );
    sim.run_until_silent(5_000_000);
    let report = measures::complexity_report(sim.protocol(), &graph, sim.stats());
    println!(
        "\ncommunication per step: {} bits (1-efficient) vs {} bits (Δ-efficient local checking)",
        report.communication_bits, report.delta_communication_bits
    );
}

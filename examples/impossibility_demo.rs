//! Demonstration of the paper's impossibility results (Theorems 1 and 2).
//!
//! The example builds the counterexample constructions of Figures 1–6: a
//! 1-stable ("frozen-read") protocol, the exact topology of the proof, and
//! the spliced configuration that is **silent yet illegitimate**. It then
//! simulates thousands of steps to show that the protocol never escapes —
//! and contrasts it with the paper's real 1-efficient protocols, which keep
//! scanning their neighborhood round-robin and *do* recover from the same
//! configuration.
//!
//! ```text
//! cargo run --example impossibility_demo
//! ```

use selfstab::prelude::*;
use selfstab_core::coloring::{Coloring, ColoringState};
use selfstab_core::impossibility::{theorem1, theorem2};
use selfstab_core::mis::Mis;
use selfstab_graph::coloring::LocalColoring;

fn main() {
    theorem1_demo();
    println!();
    theorem2_demo();
}

fn theorem1_demo() {
    println!("== Theorem 1: anonymous networks, ♦-k-stability with k < Δ is impossible ==");
    let ce = theorem1::counterexample_delta2();
    let (a, b) = ce.conflicting_pair;
    println!(
        "topology: chain of {} anonymous processes (Figure 1c); processes {a} and {b} share color {}",
        ce.graph.node_count(),
        ce.config[a.index()]
    );
    println!(
        "the spliced configuration violates the coloring predicate: {}",
        ce.violates_predicate()
    );
    println!(
        "it is silent for the frozen-read (1-stable) coloring protocol: {}",
        ce.is_silent()
    );

    // Simulate: the frozen-read protocol never escapes.
    let mut sim = Simulation::with_config(
        &ce.graph,
        ce.protocol.clone(),
        DistributedRandom::new(0.5),
        ce.config.clone(),
        1,
        SimOptions::default(),
    );
    sim.run_steps(10_000);
    println!(
        "after 10000 steps under the distributed fair daemon: {} communication changes, legitimate = {}",
        sim.stats().total_comm_changes(),
        sim.is_legitimate()
    );

    // Contrast: the real COLORING protocol recovers from the very same
    // configuration because it keeps cycling over all neighbors.
    let config: Vec<ColoringState> = ce
        .config
        .iter()
        .map(|&color| ColoringState {
            color,
            cur: Port::new(0),
        })
        .collect();
    let mut sim = Simulation::with_config(
        &ce.graph,
        Coloring::with_palette(3),
        DistributedRandom::new(0.5),
        config,
        2,
        SimOptions::default(),
    );
    let report = sim.run_until_silent(1_000_000);
    println!(
        "the paper's COLORING protocol from the same configuration: silent = {}, proper = {} (in {} steps)",
        report.silent, report.legitimate, report.steps
    );
}

fn theorem2_demo() {
    println!(
        "== Theorem 2: even rooted + dag-oriented networks do not allow k-stability with k < Δ =="
    );
    let ce = theorem2::counterexample_delta2();
    let (a, b) = ce.conflicting_pair;
    println!(
        "topology: the 6-process rooted dag-oriented network of Figure 3 (root {}, sources {:?}, sinks {:?})",
        ce.network.root,
        ce.network.sources(),
        ce.network.sinks()
    );
    println!("processes {a} and {b} are adjacent Dominators in the spliced configuration");
    println!("violates the MIS predicate: {}", ce.violates_predicate());
    println!(
        "silent for the frozen-read (1-stable) MIS protocol: {}",
        ce.is_silent()
    );

    let mut sim = Simulation::with_config(
        ce.graph(),
        ce.protocol.clone(),
        DistributedRandom::new(0.5),
        ce.config.clone(),
        3,
        SimOptions::default(),
    );
    sim.run_steps(10_000);
    println!(
        "after 10000 steps: {} communication changes, legitimate = {}",
        sim.stats().total_comm_changes(),
        sim.is_legitimate()
    );

    // Contrast with the real MIS protocol on the same colors.
    let colors: Vec<usize> = ce
        .graph()
        .nodes()
        .map(|p| ce.protocol.comm(p, &ce.config[p.index()]).color)
        .collect();
    let coloring = LocalColoring::new(ce.graph(), colors).expect("the proof's coloring is proper");
    let mut sim = Simulation::with_config(
        ce.graph(),
        Mis::new(coloring),
        DistributedRandom::new(0.5),
        ce.config.clone(),
        4,
        SimOptions::default(),
    );
    let report = sim.run_until_silent(1_000_000);
    println!(
        "the paper's MIS protocol from the same configuration: silent = {}, maximal independent set = {} (in {} steps)",
        report.silent, report.legitimate, report.steps
    );
}

//! Scenario: clusterhead election in an ad-hoc network.
//!
//! Ad-hoc routing stacks elect *clusterheads* such that every node is either
//! a clusterhead or adjacent to one, and no two clusterheads are neighbors —
//! exactly a maximal independent set. The paper's 1-efficient MIS protocol
//! computes it while, once stable, every non-clusterhead keeps monitoring a
//! single clusterhead (its dominator), which is also the node it would route
//! through.
//!
//! The example compares the stabilized-phase read traffic of the 1-efficient
//! protocol against the classical Δ-efficient baseline and checks the
//! ♦-(⌊(Lmax+1)/2⌋, 1)-stability bound of Theorem 6.
//!
//! ```text
//! cargo run --example clusterhead_election
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab::prelude::*;
use selfstab_core::baselines::BaselineMis;
use selfstab_core::mis::Mis;
use selfstab_graph::longest_path;

fn main() {
    // An ad-hoc network: a connected random graph of 40 radios.
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generators::gnp_connected(40, 0.1, &mut rng).expect("valid G(n,p) parameters");
    println!("ad-hoc network: {graph}");

    // 1-efficient MIS.
    let protocol = Mis::with_greedy_coloring(&graph);
    let mut sim = Simulation::new(
        &graph,
        protocol,
        DistributedRandom::new(0.5),
        21,
        SimOptions::default(),
    );
    let report = sim.run_until_silent(5_000_000);
    let members = Mis::output(sim.config());
    let clusterheads = members.iter().filter(|&&b| b).count();
    println!(
        "\n1-efficient MIS : clusterheads = {clusterheads}, valid = {}, rounds = {}",
        verify::is_maximal_independent_set(&graph, &members),
        report.total_rounds
    );

    // Stabilized-phase behavior: how many radios settle on monitoring a
    // single neighbor (Theorem 6)?
    sim.mark_suffix();
    sim.run_steps(2_000);
    let lmax = longest_path::longest_path_lower_bound(&graph);
    let bound = Mis::stability_bound(lmax);
    println!(
        "once stable      : {} of {} radios read a single fixed neighbor (Theorem 6 bound >= {bound}, Lmax >= {lmax})",
        sim.stats().stable_process_count(1),
        graph.node_count()
    );

    // Baseline comparison: the Δ-efficient protocol keeps reading every
    // neighbor at every check.
    let baseline = BaselineMis::with_greedy_coloring(&graph);
    let mut base_sim = Simulation::new(
        &graph,
        baseline,
        CentralRandom::enabled_only(),
        22,
        SimOptions::default(),
    );
    base_sim.run_until_silent(5_000_000);
    let reads_before = base_sim.stats().total_read_operations();
    base_sim.run_steps(2_000);
    let baseline_reads = base_sim.stats().total_read_operations() - reads_before;

    let reads_before = sim.stats().total_read_operations();
    sim.run_steps(2_000);
    let efficient_reads = sim.stats().total_read_operations() - reads_before;
    println!(
        "steady-state traffic over 2000 steps: {efficient_reads} register reads (1-efficient) vs {baseline_reads} (Δ-efficient baseline)"
    );

    // Show the routing structure: each dominated radio and its clusterhead.
    println!("\nsample of the cluster structure (first 10 dominated radios):");
    let mut shown = 0;
    for p in graph.nodes() {
        if members[p.index()] {
            continue;
        }
        if let Some(head) = graph.neighbors(p).find(|q| members[q.index()]) {
            println!("  radio {p} -> clusterhead {head}");
            shown += 1;
            if shown == 10 {
                break;
            }
        }
    }
}

//! Scenario: pairwise backup assignment in a server fleet.
//!
//! Servers that share a fast link want to pair up so each pair replicates to
//! one another; a pairing that cannot be extended is a maximal matching.
//! The paper's 1-efficient MATCHING protocol computes it so that, once
//! stable, every paired server only polls its own partner — not the whole
//! rack — and the assignment survives arbitrary memory corruption.
//!
//! ```text
//! cargo run --example pairwise_backup_matching
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfstab::prelude::*;
use selfstab_core::matching::Matching;
use selfstab_runtime::faults;

fn main() {
    // The replication fabric: the Figure 11 topology of the paper plus a
    // random fleet, to show both the tight bound and a realistic case.
    let fig11 = generators::figure11_example();
    report_on("paper Figure 11 fabric", &fig11, 5);

    let mut rng = StdRng::seed_from_u64(17);
    let fleet = generators::gnp_connected(30, 0.12, &mut rng).expect("valid G(n,p) parameters");
    report_on("random 30-server fleet", &fleet, 6);
}

fn report_on(label: &str, graph: &Graph, seed: u64) {
    println!("== {label}: {graph} ==");
    let protocol = Matching::with_greedy_coloring(graph);
    let bound = Matching::stability_bound(graph);
    let mut sim = Simulation::new(
        graph,
        protocol,
        DistributedRandom::new(0.5),
        seed,
        SimOptions::default(),
    );
    let report = sim.run_until_silent(5_000_000);
    let pairs = sim.protocol().output(graph, sim.config());
    println!(
        "paired {} of {} servers in {} rounds (valid maximal matching: {}, Theorem 8 bound: >= {} paired)",
        2 * pairs.len(),
        graph.node_count(),
        report.total_rounds,
        verify::is_maximal_matching(graph, &pairs),
        bound
    );
    for (a, b) in pairs.iter().take(6) {
        println!("  {a} <-> {b}");
    }
    if pairs.len() > 6 {
        println!("  … and {} more pairs", pairs.len() - 6);
    }

    // Corrupt a third of the fleet and watch the pairing repair itself.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    let victims = faults::inject_random_faults(&mut sim, graph.node_count() / 3, &mut rng);
    let rounds_before = sim.rounds();
    let report = sim.run_until_silent(5_000_000);
    let pairs = sim.protocol().output(graph, sim.config());
    println!(
        "after corrupting {} servers: re-paired in {} rounds, still maximal: {}\n",
        victims.len(),
        sim.rounds() - rounds_before,
        report.legitimate && verify::is_maximal_matching(graph, &pairs)
    );
}

//! No-op derive macros backing the offline `serde` stub.
//!
//! The workspace's `serde` stub implements `Serialize`/`Deserialize` as
//! blanket marker traits, so the derives have nothing to generate: they
//! accept the item and emit no code. This keeps every
//! `#[derive(Serialize, Deserialize)]` in the workspace compiling without
//! network access to the real `serde`.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits nothing; the blanket impl in the
/// `serde` stub already covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits nothing; the blanket impl in the
/// `serde` stub already covers every type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

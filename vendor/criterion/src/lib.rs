//! Offline mini benchmark harness exposing the subset of the `criterion`
//! API this workspace uses.
//!
//! Supported surface: [`Criterion::benchmark_group`] with `sample_size`,
//! `warm_up_time` and `measurement_time`, [`BenchmarkGroup::bench_function`]
//! and [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology (simplified from the real criterion): each benchmark is
//! warmed up for `warm_up_time`, the per-iteration cost is estimated, and
//! `sample_size` samples are then taken, each timing a batch of iterations
//! sized so that the samples together fill `measurement_time`. The harness
//! reports min / mean / max of the per-iteration sample means. There is no
//! statistical outlier analysis and no HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness: hands out benchmark groups.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples taken per benchmark (at least 2).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, |bencher| routine(bencher));
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, |bencher| routine(bencher, input));
        self
    }

    /// Finishes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                budget: self.warm_up_time,
            },
            per_iter_estimate: Duration::from_micros(1),
            samples: Vec::new(),
        };
        routine(&mut bencher);
        let estimate = bencher.per_iter_estimate;
        bencher.mode = Mode::Measure {
            budget: self.measurement_time,
            sample_count: self.sample_size,
        };
        routine(&mut bencher);
        report(label, estimate, &bencher.samples);
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    WarmUp {
        budget: Duration,
    },
    Measure {
        budget: Duration,
        sample_count: usize,
    },
}

/// Times the routine handed to it by a benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    per_iter_estimate: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::WarmUp { budget } => {
                let start = Instant::now();
                let mut iters: u32 = 0;
                while start.elapsed() < budget || iters == 0 {
                    black_box(routine());
                    iters += 1;
                    // A single extremely slow iteration can overrun the
                    // budget by itself; never spin past 2^20 iterations.
                    if iters >= 1 << 20 {
                        break;
                    }
                }
                self.per_iter_estimate = (start.elapsed() / iters).max(Duration::from_nanos(1));
            }
            Mode::Measure {
                budget,
                sample_count,
            } => {
                let per_sample = budget / sample_count as u32;
                let iters_per_sample = (per_sample.as_nanos()
                    / self.per_iter_estimate.as_nanos().max(1))
                .clamp(1, 1 << 24) as u32;
                self.samples.clear();
                for _ in 0..sample_count {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    self.samples.push(start.elapsed() / iters_per_sample);
                }
            }
        }
    }
}

fn report(label: &str, estimate: Duration, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} no samples recorded");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<60} time: [{} {} {}]  (warm-up estimate {})",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        fmt_duration(estimate),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark entry point running each listed target function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("conv", 64).to_string(), "conv/64");
        assert_eq!(
            BenchmarkId::from_parameter("ring-64").to_string(),
            "ring-64"
        );
    }

    #[test]
    fn groups_measure_and_report() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(15));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("sum"), &1_000u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            })
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(calls > 0, "the routine must actually run");
    }
}

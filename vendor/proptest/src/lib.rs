//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name in strategy` argument bindings,
//! * [`Strategy`] implemented for integer ranges and tuples, with
//!   [`Strategy::prop_map`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Unlike the real `proptest` there is **no shrinking**: a failing case
//! reports the case number and the panic message. Sampling is deterministic
//! per test (seeded from the test's name), so failures reproduce across
//! runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

pub use rand;
use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// The RNG handed to strategies while sampling test cases.
pub type TestRng = StdRng;

/// Configuration accepted by the `proptest_config` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every generated value through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.sample(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...) { .. }`
/// item becomes a libtest test running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng = <$crate::TestRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest: {} failed at case {}/{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_sample_in_bounds(n in 3usize..40, seed in 0u64..1_000) {
            prop_assert!((3..40).contains(&n));
            prop_assert!(seed < 1_000);
        }

        #[test]
        fn mapped_strategies_apply_the_map(x in even()) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}

//! Offline stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! downstream users can plug in real serialization, but nothing in the
//! workspace itself serializes at runtime — and the build environment has no
//! network access to fetch the real `serde`. This stub keeps the derive
//! annotations compiling: the traits are blanket-implemented markers and the
//! derive macros (re-exported from the sibling `serde_derive` stub) expand to
//! nothing.
//!
//! Swapping in the real `serde` is a one-line change in the workspace
//! manifest; no source edits are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker standing in for `serde::Serialize`; blanket-implemented for every
/// type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; blanket-implemented for
/// every type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

//! Offline drop-in replacement for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment for this repository has no network access and no
//! pre-populated cargo registry, so the workspace vendors the handful of
//! `rand` items it actually needs: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen_range` over integer ranges, `gen_bool`),
//! [`rngs::StdRng`] and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64. It is deterministic for a given seed — which is all the
//! simulations rely on — but its exact output stream differs from upstream
//! `rand`'s ChaCha12-based `StdRng`, so numeric results are reproducible
//! *within* this workspace only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A random number generator: the object-safe core interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in upstream `rand`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it over the full seed
    /// with SplitMix64 (same construction as upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Integer types that [`Rng::gen_range`] can sample uniformly from a
/// half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Unbiased uniform sample from `[0, span)` (`span > 0`) via rejection
/// sampling on the widening multiply (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Reject and resample: `low` fell in the biased zone.
    }
}

/// Convenience extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples an integer uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]` (including NaN), matching
    /// upstream `rand` — a silently degraded probability would corrupt
    /// daemon behavior without any error.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} is outside [0.0, 1.0]"
        );
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the same precision upstream uses.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&x[..len]);
            }
        }
    }

    /// Deterministic mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// A mock generator returning `initial`, `initial + increment`,
        /// `initial + 2·increment`, … from `next_u64`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let x = self.next_u64().to_le_bytes();
                    let len = chunk.len();
                    chunk.copy_from_slice(&x[..len]);
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices: random element choice and in-place
    /// shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }

    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, upper: usize) -> usize {
        rng.gen_range(0..upper)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values of 0..10 appear");
        for _ in 0..1_000 {
            let x = rng.gen_range(5u64..6);
            assert_eq!(x, 5);
        }
        for _ in 0..1_000 {
            let x = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty_ranges() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3u32..3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_and_choose_work_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(dyn_rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(dyn_rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(dyn_rng).is_none());
    }
}
